"""Router-side node plumbing: raw frame channels and the fleet pool.

:class:`NodeChannel` is deliberately *not* an
:class:`~repro.service.client.AsyncMatchingClient`: the router is a
proxy, and the client classes interpret responses (re-raise warning
entries, translate error frames into exceptions) where the router must
pass both through to its caller verbatim.  A channel speaks raw frames:
send a dict, get the response dict back — error frames included — and
raise :class:`NodeError` only for *transport* failures (connect, reset,
EOF), the signal the failover path keys on.

:class:`NodePool` is the router's fleet membership view: liveness
flags, the health-probe channel per node, and the counters the fleet
stats surface reports.
"""

from __future__ import annotations

import asyncio
import itertools

from repro.errors import ReproError
from repro.service.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
)

#: default per-request round-trip budget.  Generous, because a cold
#: ``register`` compiles; the point is that it is *finite* — a node
#: that is connected but hung (stuck process, network blackhole) must
#: eventually surface as a :class:`NodeError` so the failover and
#: dead-marking paths engage instead of wedging the caller forever.
DEFAULT_REQUEST_TIMEOUT_S = 60.0


class NodeError(ReproError):
    """Transport-level failure talking to a node (retry / failover)."""


class NodeChannel:
    """One raw NDJSON request/response connection to a node.

    Requests are serialized by a lock (the node answers a connection's
    frames in order); the channel assigns its own frame ids and strips
    them from responses — the router re-stamps the client's id.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        timeout_s: float | None = DEFAULT_REQUEST_TIMEOUT_S,
    ) -> None:
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        self.timeout_s = timeout_s
        self._ids = itertools.count(1)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def connect(self) -> "NodeChannel":
        if self._writer is None:
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port, limit=self.max_frame_bytes
                )
            except OSError as exc:
                raise NodeError(
                    f"cannot connect to node {self.host}:{self.port}: {exc}"
                ) from exc
        return self

    async def close(self) -> None:
        if self._writer is not None:
            writer, self._reader, self._writer = self._writer, None, None
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _round_trip(self, wire: dict) -> bytes:
        await self.connect()
        self._writer.write(encode_frame(wire))
        await self._writer.drain()
        return await self._reader.readline()

    async def request(
        self, frame: dict, *, timeout_s: float | None = None
    ) -> dict:
        """Round-trip one frame; returns the raw response payload.

        The response dict is returned as-is minus its ``id`` — error
        frames (``ok: false``) included.  Transport failures *and*
        round-trips exceeding ``timeout_s`` (the channel's default when
        None) close the channel and raise :class:`NodeError` — a hung
        node must look exactly like a dead one to the failover path.
        """
        timeout = self.timeout_s if timeout_s is None else timeout_s
        async with self._lock:
            request_id = next(self._ids)
            wire = {**frame, "id": request_id}
            try:
                if timeout is not None:
                    line = await asyncio.wait_for(
                        self._round_trip(wire), timeout
                    )
                else:
                    line = await self._round_trip(wire)
            except asyncio.TimeoutError:
                await self.close()
                raise NodeError(
                    f"node {self.host}:{self.port} did not answer "
                    f"within {timeout:g}s"
                ) from None
            except (
                asyncio.LimitOverrunError,
                ValueError,
                ConnectionError,
                OSError,
            ) as exc:
                await self.close()
                raise NodeError(
                    f"node {self.host}:{self.port} i/o failed: {exc}"
                ) from exc
            if not line:
                await self.close()
                raise NodeError(
                    f"node {self.host}:{self.port} closed the connection"
                )
        response = decode_frame(line)
        if response.get("ok") and response.get("id") != request_id:
            raise ProtocolError(
                f"node {self.host}:{self.port} answered out of order "
                f"(expected id {request_id}, got {response.get('id')!r})"
            )
        response.pop("id", None)
        return response


class NodeHandle:
    """The router's view of one fleet node."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        timeout_s: float | None = DEFAULT_REQUEST_TIMEOUT_S,
    ) -> None:
        self.host = host
        self.port = port
        self.name = f"{host}:{port}"
        self.max_frame_bytes = max_frame_bytes
        self.timeout_s = timeout_s
        self.alive = True
        #: ruleset handles confirmed registered on this node
        self.registered: set[str] = set()
        self.requests = 0
        self.failures = 0
        self.last_health: dict | None = None
        #: dedicated probe channel (never shared with proxied traffic,
        #: so a wedged stream cannot block liveness checks)
        self.probe = NodeChannel(
            host, port, max_frame_bytes=max_frame_bytes, timeout_s=timeout_s
        )

    def new_channel(self) -> NodeChannel:
        return NodeChannel(
            self.host,
            self.port,
            max_frame_bytes=self.max_frame_bytes,
            timeout_s=self.timeout_s,
        )

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"NodeHandle({self.name}, {state})"


class NodePool:
    """Fleet membership: named handles plus liveness transitions."""

    def __init__(self) -> None:
        self._nodes: dict[str, NodeHandle] = {}

    def add(self, host: str, port: int, **kwargs) -> NodeHandle:
        """Add (or return the existing) node for ``host:port``."""
        name = f"{host}:{port}"
        handle = self._nodes.get(name)
        if handle is None:
            handle = NodeHandle(host, port, **kwargs)
            self._nodes[name] = handle
        return handle

    def get(self, name: str) -> NodeHandle | None:
        return self._nodes.get(name)

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self):
        return iter(self._nodes.values())

    @property
    def names(self) -> list[str]:
        return sorted(self._nodes)

    def alive_names(self) -> list[str]:
        return sorted(n.name for n in self._nodes.values() if n.alive)

    def mark_dead(self, name: str) -> None:
        handle = self._nodes.get(name)
        if handle is not None:
            handle.alive = False
            # anything it held must be re-confirmed when it returns
            handle.registered.clear()

    def mark_alive(self, name: str) -> None:
        handle = self._nodes.get(name)
        if handle is not None:
            handle.alive = True

    async def health_check(
        self, handle: NodeHandle, *, timeout_s: float | None = None
    ) -> dict | None:
        """Probe one node; returns its health payload or None (dead).

        ``timeout_s`` overrides the probe channel's default — liveness
        probes can afford a much shorter budget than proxied work, so a
        hung node stops answering health checks quickly instead of
        wedging the health loop for a full request timeout.
        """
        try:
            response = await handle.probe.request(
                {"op": "health"}, timeout_s=timeout_s
            )
        except (NodeError, ProtocolError):
            return None
        if not response.get("ok"):
            return None
        handle.last_health = response
        return response
