"""Synthetic, profile-matched versions of the 21 paper benchmarks."""

from repro.workloads.generators import generate
from repro.workloads.inputs import (
    DEFAULT_INJECTION_RATE,
    DEFAULT_STREAM_LENGTH,
    benchmark_input,
    multi_stream_inputs,
    pattern_walk,
)
from repro.workloads.profiles import (
    BENCHMARK_NAMES,
    DEFAULT_SCALE,
    PROFILES,
    BenchmarkProfile,
    PaperNumbers,
)
from repro.workloads.registry import (
    Benchmark,
    all_benchmarks,
    get_benchmark,
    profile_of,
)

__all__ = [
    "BENCHMARK_NAMES",
    "Benchmark",
    "BenchmarkProfile",
    "DEFAULT_INJECTION_RATE",
    "DEFAULT_SCALE",
    "DEFAULT_STREAM_LENGTH",
    "PROFILES",
    "PaperNumbers",
    "all_benchmarks",
    "benchmark_input",
    "generate",
    "get_benchmark",
    "multi_stream_inputs",
    "pattern_walk",
    "profile_of",
]
