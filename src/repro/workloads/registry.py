"""Benchmark registry: one call to get a named benchmark's NFA + input."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.automata.nfa import Automaton
from repro.errors import ReproError
from repro.workloads.generators import generate
from repro.workloads.inputs import DEFAULT_STREAM_LENGTH, benchmark_input
from repro.workloads.profiles import (
    BENCHMARK_NAMES,
    DEFAULT_SCALE,
    PROFILES,
    BenchmarkProfile,
)


@dataclass(frozen=True)
class Benchmark:
    """A generated benchmark instance."""

    profile: BenchmarkProfile
    automaton: Automaton
    scale: float

    @property
    def name(self) -> str:
        return self.profile.name

    def input_stream(self, length: int = DEFAULT_STREAM_LENGTH, seed: int = 0) -> bytes:
        return benchmark_input(self.automaton, length=length, seed=seed)


def profile_of(name: str) -> BenchmarkProfile:
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(BENCHMARK_NAMES)
        raise ReproError(f"unknown benchmark {name!r}; known: {known}") from None


@lru_cache(maxsize=64)
def _cached(name: str, scale: float) -> Benchmark:
    profile = profile_of(name)
    return Benchmark(
        profile=profile, automaton=generate(profile, scale=scale), scale=scale
    )


def get_benchmark(name: str, scale: float = DEFAULT_SCALE) -> Benchmark:
    """Generate (and cache) the named benchmark at the given scale."""
    return _cached(name, scale)


def all_benchmarks(scale: float = DEFAULT_SCALE) -> list[Benchmark]:
    """All 21 benchmarks, in the paper's table order."""
    return [get_benchmark(name, scale) for name in BENCHMARK_NAMES]
