"""Input stream synthesis.

The paper drives every benchmark with 10 MB of real input; we generate
deterministic streams with a controllable *injection rate*: background
symbols drawn from the automaton's alphabet, interleaved with random
walks along actual transition paths so a realistic fraction of states
activates (ANMLZoo's published activity factors are a few percent).
"""

from __future__ import annotations

import random

from repro.automata.nfa import Automaton
from repro.errors import ReproError

DEFAULT_STREAM_LENGTH = 10_000
DEFAULT_INJECTION_RATE = 0.05


def pattern_walk(
    automaton: Automaton, rng: random.Random, max_steps: int = 24
) -> bytes:
    """Emit symbols along one random transition path from a start state."""
    starts = automaton.start_states()
    if not starts:
        raise ReproError("automaton has no start states to walk from")
    state = rng.choice(starts).ste_id
    out = bytearray()
    for _ in range(max_steps):
        symbols = automaton.states[state].symbol_class.symbols()
        out.append(rng.choice(symbols))
        successors = sorted(automaton.successors(state))
        if not successors:
            break
        state = rng.choice(successors)
    return bytes(out)


def benchmark_input(
    automaton: Automaton,
    length: int = DEFAULT_STREAM_LENGTH,
    seed: int = 0,
    injection_rate: float = DEFAULT_INJECTION_RATE,
) -> bytes:
    """A deterministic input stream for ``automaton``.

    Args:
        length: stream length in bytes.
        seed: RNG seed (streams are reproducible per seed).
        injection_rate: probability, per emitted position, of splicing
            in a pattern walk instead of one background symbol.
    """
    if length <= 0:
        raise ReproError("input length must be positive")
    if not 0.0 <= injection_rate <= 1.0:
        raise ReproError("injection rate must be within [0, 1]")
    rng = random.Random(seed ^ 0x5EED)
    alphabet = automaton.alphabet().symbols()
    out = bytearray()
    while len(out) < length:
        if rng.random() < injection_rate:
            out.extend(pattern_walk(automaton, rng))
        else:
            out.append(rng.choice(alphabet))
    return bytes(out[:length])


def multi_stream_inputs(
    automaton: Automaton,
    num_streams: int,
    length: int = DEFAULT_STREAM_LENGTH,
    seed: int = 0,
    injection_rate: float = DEFAULT_INJECTION_RATE,
) -> dict[str, bytes]:
    """Named per-tenant input streams for the same automaton.

    The multi-tenant service workload: ``num_streams`` independent,
    deterministically different streams (one per simulated user) that
    feed ``scan_many`` and the session benchmarks.
    """
    if num_streams <= 0:
        raise ReproError("number of streams must be positive")
    return {
        f"stream-{i:03d}": benchmark_input(
            automaton,
            length=length,
            seed=seed + i,
            injection_rate=injection_rate,
        )
        for i in range(num_streams)
    }
