"""Synthetic automaton generators, one family per benchmark shape.

Every generator is deterministic in (profile, scale, seed) and produces
a valid homogeneous NFA whose per-state statistics track the published
numbers (asserted by the workload tests within tolerances) and whose
*structure* — component size, diagonal band, density — drives the
mapper the way the real benchmark drives the paper's (Table V).
"""

from __future__ import annotations

import random

from repro.automata.nfa import Automaton, StartKind
from repro.automata.symbols import SymbolClass
from repro.errors import ReproError
from repro.workloads.profiles import DEFAULT_SCALE, BenchmarkProfile


def _rng_symbols(rng: random.Random, alphabet: int) -> int:
    return rng.randrange(alphabet)


class _ClassPools:
    """Shared pools of multi-symbol and negated classes.

    Real benchmarks reuse a small set of character classes ([0-9],
    [a-f], amino-acid groups, frequent item sets, ...), which is what
    lets CAMA's frequency clustering co-locate their symbols and
    compress each class into one entry.  Drawing classes from pools —
    instead of fresh random sets per state — reproduces that property.
    """

    MULTI_POOL = 24
    NEGATED_POOL = 16

    def __init__(self, rng: random.Random, alphabet: int, params: dict) -> None:
        lo, hi = params.get("multi_size", (2, 6))
        self.multi: list[SymbolClass] = []
        for _ in range(self.MULTI_POOL):
            size = min(rng.randint(lo, hi), alphabet)
            if params.get("ranges"):
                start = rng.randrange(max(1, alphabet - size))
                self.multi.append(
                    SymbolClass.from_ranges((start, start + size - 1))
                )
            else:
                self.multi.append(
                    SymbolClass.from_symbols(rng.sample(range(alphabet), size))
                )
        nlo, nhi = params.get("negated_size", (1, 4))
        self.negated: list[SymbolClass] = []
        for _ in range(self.NEGATED_POOL):
            size = rng.randint(nlo, nhi)
            excluded = rng.sample(range(alphabet), min(size, alphabet - 1))
            base = SymbolClass.from_symbols(excluded).negate()
            if alphabet < 256:
                base = base & SymbolClass.from_ranges((0, alphabet - 1))
            self.negated.append(base)


def _pattern_class(
    rng: random.Random, alphabet: int, params: dict, pools: _ClassPools
) -> SymbolClass:
    """Draw one state's symbol class according to the family's mix."""
    roll = rng.random()
    dot_prob = params.get("dot_prob", 0.0)
    negated_prob = params.get("negated_prob", 0.0)
    multi_prob = params.get("multi_prob", 0.0)
    if roll < dot_prob:
        if alphabet >= 256:
            return SymbolClass.universe()
        return SymbolClass.from_ranges((0, alphabet - 1))
    roll -= dot_prob
    if roll < negated_prob:
        return rng.choice(pools.negated)
    roll -= negated_prob
    if roll < multi_prob:
        return rng.choice(pools.multi)
    return SymbolClass.from_symbols([_rng_symbols(rng, alphabet)])


def _add_chain(
    nfa: Automaton,
    rng: random.Random,
    length: int,
    alphabet: int,
    params: dict,
    pools: "_ClassPools",
    code: str,
) -> None:
    """One pattern = one chain CC, with optional dot-star bridges."""
    dotstar_prob = params.get("dotstar_prob", 0.0)
    prev = None
    dotstar_at = (
        rng.randint(1, max(1, length - 2))
        if rng.random() < dotstar_prob and length >= 4
        else None
    )
    for i in range(length):
        if i == dotstar_at:
            universe = (
                SymbolClass.universe()
                if alphabet >= 256
                else SymbolClass.from_ranges((0, alphabet - 1))
            )
            bridge = nfa.add_state(universe)
            nfa.add_transition(prev, bridge)
            nfa.add_transition(bridge, bridge)  # the .* self-loop
            prev = bridge
        ste = nfa.add_state(
            _pattern_class(rng, alphabet, params, pools),
            start=StartKind.ALL_INPUT if i == 0 else StartKind.NONE,
            reporting=i == length - 1,
            report_code=code if i == length - 1 else None,
        )
        if prev is not None:
            nfa.add_transition(prev, ste)
        prev = ste


def _generate_strings(profile: BenchmarkProfile, scale: float, seed: int) -> Automaton:
    """Pattern-set benchmarks: Brill, ClamAV, Snort, Ranges, SPM, TCP, ..."""
    rng = random.Random(seed)
    params = profile.params
    alphabet = params.get("alphabet_size", 256)
    target = profile.target_states(scale)
    nfa = Automaton(name=profile.name)
    pools = _ClassPools(rng, alphabet, params)

    if params.get("big_component"):
        # one >256-state component exercising the global switch (TCP,
        # Snort, Protomata and ClamAV show baseline/proposed globals)
        _add_chain(nfa, rng, 300, alphabet, params, pools, code="big")

    for index, _ in enumerate(range(10**6)):
        if len(nfa) >= target:
            break
        lo, hi = params["pattern_len"]
        _add_chain(
            nfa, rng, rng.randint(lo, hi), alphabet, params, pools,
            code=f"p{index}",
        )

    for _ in range(params.get("dense_ccs", 0)):
        _add_dense_component(
            nfa, rng, rng.randint(50, 70), alphabet, params, pools
        )
    return nfa


def _add_dense_component(
    nfa: Automaton,
    rng: random.Random,
    size: int,
    alphabet: int,
    params: dict,
    pools: "_ClassPools",
    jump_prob: float = 0.3,
) -> None:
    """A dense CC whose BFS band exceeds the RCB diagonal (FCB fodder).

    Chain backbone plus *local* long jumps (distance 44-70): the band
    exceeds CAMA's k_dia=43 so the component needs FCB mode, but cut
    sizes stay small so domains still pack tightly — the structure of
    the paper's dense benchmarks (their FCB domains are ~90% full).
    """
    first = len(nfa)
    for i in range(size):
        nfa.add_state(
            _pattern_class(rng, alphabet, params, pools),
            start=StartKind.ALL_INPUT if i == 0 else StartKind.NONE,
            reporting=i == size - 1,
            report_code="dense" if i == size - 1 else None,
        )
    for i in range(size - 1):
        # backbone keeps every state reachable from the start state
        nfa.add_transition(first + i, first + i + 1)
    for i in range(size):
        if rng.random() < jump_prob:
            dist = rng.randint(44, 70)
            j = i + dist if rng.random() < 0.5 else i - dist
            if 0 <= j < size:
                nfa.add_transition(first + i, first + j)


def _generate_dotstar(profile: BenchmarkProfile, scale: float, seed: int) -> Automaton:
    return _generate_strings(profile, scale, seed)


def _generate_negated_strings(
    profile: BenchmarkProfile, scale: float, seed: int
) -> Automaton:
    return _generate_strings(profile, scale, seed)


def _generate_hamming(profile: BenchmarkProfile, scale: float, seed: int) -> Automaton:
    """Hamming-distance grids: (position x errors) lattice per pattern."""
    rng = random.Random(seed)
    length = profile.params["pattern_len"]
    distance = profile.params["distance"]
    target = profile.target_states(scale)
    nfa = Automaton(name=profile.name)
    while len(nfa) < target:
        pattern = [rng.randrange(256) for _ in range(length)]
        grid: dict[tuple[int, int], int] = {}
        # only e <= i is reachable (an error consumes a position)
        for e in range(distance + 1):
            for i in range(e, length):
                ste = nfa.add_state(
                    SymbolClass.from_symbols([pattern[i]]),
                    start=StartKind.ALL_INPUT if i == 0 and e == 0 else StartKind.NONE,
                    reporting=i == length - 1,
                    report_code=f"d{e}" if i == length - 1 else None,
                )
                grid[(i, e)] = ste.ste_id
        for (i, e) in list(grid):
            if (i + 1, e) in grid:
                nfa.add_transition(grid[(i, e)], grid[(i + 1, e)])
            if (i + 1, e + 1) in grid:
                # a mismatch consumes one symbol and one error credit
                nfa.add_transition(grid[(i, e)], grid[(i + 1, e + 1)])
    return nfa


def _generate_levenshtein(
    profile: BenchmarkProfile, scale: float, seed: int
) -> Automaton:
    """Levenshtein lattices: like Hamming plus deletion edges."""
    rng = random.Random(seed)
    length = profile.params["pattern_len"]
    distance = profile.params["distance"]
    target = profile.target_states(scale)
    nfa = Automaton(name=profile.name)
    while len(nfa) < target:
        pattern = [rng.randrange(256) for _ in range(length)]
        grid: dict[tuple[int, int], int] = {}
        # only e <= i is reachable (errors consume pattern positions)
        for e in range(distance + 1):
            for i in range(e, length):
                ste = nfa.add_state(
                    SymbolClass.from_symbols([pattern[i]]),
                    start=StartKind.ALL_INPUT if i == 0 and e == 0 else StartKind.NONE,
                    reporting=i == length - 1,
                    report_code=f"d{e}" if i == length - 1 else None,
                )
                grid[(i, e)] = ste.ste_id
        for (i, e) in list(grid):
            if (i + 1, e) in grid:
                nfa.add_transition(grid[(i, e)], grid[(i + 1, e)])
            if (i + 1, e + 1) in grid:
                nfa.add_transition(grid[(i, e)], grid[(i + 1, e + 1)])
            if (i + 2, e + 1) in grid:
                # deletion: skip a pattern position
                nfa.add_transition(grid[(i, e)], grid[(i + 2, e + 1)])
    return nfa


def _generate_blockrings(
    profile: BenchmarkProfile, scale: float, seed: int
) -> Automaton:
    """Rings over a 2-symbol alphabet (ANMLZoo's synthetic BlockRings)."""
    ring_len = profile.params["ring_len"]
    target = profile.target_states(scale)
    nfa = Automaton(name=profile.name)
    rng = random.Random(seed)
    while len(nfa) < target:
        first = len(nfa)
        for i in range(ring_len):
            nfa.add_state(
                SymbolClass.from_symbols([rng.randrange(2)]),
                start=StartKind.ALL_INPUT if i == 0 else StartKind.NONE,
                reporting=i == ring_len - 1,
                report_code="ring" if i == ring_len - 1 else None,
            )
        for i in range(ring_len):
            nfa.add_transition(first + i, first + (i + 1) % ring_len)
    return nfa


def _generate_random_forest(
    profile: BenchmarkProfile, scale: float, seed: int
) -> Automaton:
    """Decision-tree ensembles: dense small CCs with very wide classes.

    Feature-threshold tests accept long symbol ranges (the paper: raw
    class size ~179, with NO ~52), and tree levels are densely wired —
    RandomForest is the paper's 32-bit-mode, all-FCB benchmark.
    """
    rng = random.Random(seed)
    target = profile.target_states(scale)
    lo, hi = profile.params["cc_size"]
    nfa = Automaton(name=profile.name)
    while len(nfa) < target:
        size = rng.randint(lo, hi)
        first = len(nfa)
        for i in range(size):
            if rng.random() < 0.72:
                # wide threshold range, e.g. [x-255] or [0-x]
                width = rng.randint(150, 253)
                start = rng.randrange(256 - width)
                cls = SymbolClass.from_ranges((start, start + width - 1))
            else:
                width = rng.randint(20, 90)
                start = rng.randrange(256 - width)
                cls = SymbolClass.from_ranges((start, start + width - 1))
            nfa.add_state(
                cls,
                start=StartKind.ALL_INPUT if i == 0 else StartKind.NONE,
                reporting=i == size - 1,
                report_code="leaf" if i == size - 1 else None,
            )
        for i in range(size - 1):
            nfa.add_transition(first + i, first + i + 1)
        for i in range(size):
            if rng.random() < 0.2:
                dist = rng.randint(44, 50)
                if i + dist < size:
                    nfa.add_transition(first + i, first + i + dist)
    return nfa


def _generate_entity_resolution(
    profile: BenchmarkProfile, scale: float, seed: int
) -> Automaton:
    """Name-matching automata: dense mid-size CCs, many negated classes."""
    rng = random.Random(seed)
    target = profile.target_states(scale)
    lo, hi = profile.params["cc_size"]
    negated_prob = profile.params["negated_prob"]
    nfa = Automaton(name=profile.name)
    pools = _ClassPools(rng, 256, {"negated_size": (1, 3)})
    while len(nfa) < target:
        size = rng.randint(lo, hi)
        first = len(nfa)
        for i in range(size):
            if rng.random() < negated_prob:
                cls = rng.choice(pools.negated)
            else:
                cls = SymbolClass.from_symbols([rng.randrange(256)])
            nfa.add_state(
                cls,
                start=StartKind.ALL_INPUT if i == 0 else StartKind.NONE,
                reporting=i == size - 1,
                report_code="match" if i == size - 1 else None,
            )
        for i in range(size - 1):
            nfa.add_transition(first + i, first + i + 1)
        for i in range(size):
            if rng.random() < 0.3:
                dist = rng.randint(44, 70)
                j = i + dist if rng.random() < 0.5 else i - dist
                if 0 <= j < size:
                    nfa.add_transition(first + i, first + j)
    return nfa


_FAMILIES = {
    "strings": _generate_strings,
    "dotstar": _generate_dotstar,
    "negated_strings": _generate_negated_strings,
    "hamming": _generate_hamming,
    "levenshtein": _generate_levenshtein,
    "blockrings": _generate_blockrings,
    "random_forest": _generate_random_forest,
    "entity_resolution": _generate_entity_resolution,
}


def generate(
    profile: BenchmarkProfile,
    scale: float = DEFAULT_SCALE,
    seed: int | None = None,
) -> Automaton:
    """Build the synthetic automaton for ``profile``."""
    if profile.family not in _FAMILIES:
        raise ReproError(f"unknown benchmark family {profile.family!r}")
    if seed is None:
        seed = sum(ord(c) for c in profile.name) * 7919
    automaton = _FAMILIES[profile.family](profile, scale, seed)
    automaton.validate()
    return automaton


def dense_activity_automaton(
    num_states: int = 512,
    *,
    chain_length: int = 16,
    match_width: int = 200,
    seed: int = 0,
    name: str = "dense-activity",
) -> Automaton:
    """A workload whose per-cycle active fraction is high by construction.

    Chains of wide-class (``match_width`` symbols out of 256) states
    whose heads are all all-input starts: under uniform random input a
    large fraction of states is active every cycle — the opposite of
    the paper's few-percent regime, and the regime where the
    bit-parallel backend overtakes the sparse one (used by the backend
    crossover benchmark and the ``auto``-policy tests).  Reports stay
    rare: each chain's reporter requires one extra symbol outside the
    wide class, so throughput measures matching, not report recording.
    """
    rng = random.Random(seed)
    nfa = Automaton(name=name)
    wide_lo, wide_hi = 0, match_width - 1
    report_symbol = min(255, match_width)  # just outside the wide class
    while len(nfa) < num_states:
        length = min(chain_length, num_states - len(nfa))
        prev = None
        for i in range(length):
            start = rng.randrange(wide_lo, max(1, wide_hi - 40))
            width = rng.randint(max(1, match_width - 60), match_width)
            if i == length - 1:
                # always narrow, even for a length-1 trailing chain —
                # a wide all-input reporter would flood the report
                # stream and break the "reports stay rare" guarantee
                cls = SymbolClass.from_symbols([report_symbol])
            else:
                cls = SymbolClass.from_ranges(
                    (start, min(255, start + width - 1))
                )
            ste = nfa.add_state(
                cls,
                start=StartKind.ALL_INPUT if i == 0 else StartKind.NONE,
                reporting=i == length - 1,
                report_code=f"d{len(nfa)}" if i == length - 1 else None,
            )
            if not ste.reporting:
                # dot-star-like self-loop: once entered, a wide state
                # stays active while its (wide) class keeps matching —
                # the mechanism that drives activity toward the match
                # probability instead of decaying down the chain
                nfa.add_transition(ste, ste)
            if prev is not None:
                nfa.add_transition(prev, ste)
            prev = ste
    nfa.validate()
    return nfa
