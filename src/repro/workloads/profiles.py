"""Benchmark profiles: the published statistics of ANMLZoo + Regex.

ANMLZoo and the Regex suite are multi-gigabyte external artifacts; per
DESIGN.md the reproduction generates *synthetic* automata matched to
each benchmark's published statistics, which are collected here from
the paper's Tables I, II and V.  The experiment harnesses print these
paper numbers next to the measured ones.

``scale`` shrinks state counts (Python simulation is ~10^4x slower than
the authors' C++ VASim); the per-state statistics and the component
*structure* (CC size, density, band) are scale-invariant, which is what
the paper's relative results depend on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: default shrink factor applied to the published state counts
DEFAULT_SCALE = 1.0 / 16.0


@dataclass(frozen=True)
class PaperNumbers:
    """Published per-benchmark values (Tables I, II, V)."""

    # Table I
    class_size_raw: float
    class_size_no: float
    alphabet: int
    cam_entries_raw: int
    cam_entries_no: int
    # Table II
    onehot_states: int
    fixed32_states: int
    code_length: int
    proposed_states: int
    # Table V
    baseline_local: int
    baseline_global: int
    rcb_mode: int
    proposed_global: int
    fcb_mode: int


@dataclass(frozen=True)
class BenchmarkProfile:
    """One benchmark: its paper numbers plus generator parameters."""

    name: str
    family: str
    paper: PaperNumbers
    #: generator-specific knobs (see repro.workloads.generators)
    params: dict = field(default_factory=dict)

    def target_states(self, scale: float = DEFAULT_SCALE) -> int:
        return max(32, round(self.paper.onehot_states * scale))


def _p(
    name,
    family,
    class_size_raw,
    class_size_no,
    alphabet,
    entries_raw,
    entries_no,
    onehot,
    fixed32,
    code_length,
    proposed,
    b_local,
    b_global,
    rcb,
    p_global,
    fcb,
    **params,
) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name,
        family=family,
        paper=PaperNumbers(
            class_size_raw=class_size_raw,
            class_size_no=class_size_no,
            alphabet=alphabet,
            cam_entries_raw=entries_raw,
            cam_entries_no=entries_no,
            onehot_states=onehot,
            fixed32_states=fixed32,
            code_length=code_length,
            proposed_states=proposed,
            baseline_local=b_local,
            baseline_global=b_global,
            rcb_mode=rcb,
            proposed_global=p_global,
            fcb_mode=fcb,
        ),
        params=params,
    )


PROFILES: dict[str, BenchmarkProfile] = {
    p.name: p
    for p in [
        _p("Brill", "strings", 1, 1, 256, 42658, 42658,
           42658, 42658, 11, 42658, 169, 0, 169, 0, 0,
           pattern_len=(18, 30)),
        _p("ClamAV", "strings", 1.006, 1.006, 256, 49593, 49593,
           49538, 49616, 16, 49593, 199, 3, 199, 0, 3,
           pattern_len=(120, 220), multi_prob=0.006, big_component=True),
        _p("Dotstar", "dotstar", 1.56, 1.56, 256, 103280, 103280,
           96438, 99254, 16, 103280, 381, 0, 408, 0, 0,
           pattern_len=(14, 26), dotstar_prob=0.045, multi_prob=0.03,
           multi_size=(2, 4)),
        _p("Fermi", "strings", 7.18, 4, 256, 53769, 61066,
           40783, 43972, 16, 61066, 160, 0, 245, 0, 0,
           pattern_len=(8, 16), multi_prob=0.66, multi_size=(3, 8),
           negated_prob=0.0126, negated_size=(1, 3)),
        _p("TCP", "negated_strings", 9.26, 1.28, 256, 32883, 20156,
           19704, 20200, 16, 20156, 78, 1, 76, 1, 8,
           pattern_len=(10, 22), negated_prob=0.033, negated_size=(1, 5),
           big_component=True),
        _p("Protomata", "strings", 4.41, 2.65, 256, 162443, 69715,
           42011, 78078, 16, 69715, 166, 0, 274, 1, 5,
           pattern_len=(20, 40), multi_prob=0.55, multi_size=(2, 9),
           negated_prob=0.004, negated_size=(2, 6), dense_ccs=2,
           big_component=True),
        _p("Snort", "strings", 4.41, 2.02, 256, 90718, 72884,
           69029, 88857, 16, 72884, 277, 0, 284, 1, 27,
           pattern_len=(12, 30), multi_prob=0.30, multi_size=(2, 10),
           negated_prob=0.006, negated_size=(1, 4), dot_prob=0.002,
           dense_ccs=8, big_component=True),
        _p("Hamming", "hamming", 1, 1, 256, 11346, 11346,
           11346, 11346, 11, 11346, 47, 0, 47, 0, 0,
           pattern_len=20, distance=3),
        _p("PowerEN", "strings", 1.95, 1.09, 256, 48016, 41080,
           40513, 41511, 16, 41080, 162, 0, 162, 0, 0,
           pattern_len=(15, 35), multi_prob=0.09, multi_size=(2, 6),
           negated_prob=0.004, negated_size=(1, 3)),
        _p("Levenshtein", "levenshtein", 1, 1, 256, 2784, 2784,
           2784, 2784, 11, 2784, 12, 0, 12, 0, 0,
           pattern_len=24, distance=3),
        _p("RandomForest", "random_forest", 179.05, 51.55, 256, 80515, 75936,
           33220, 128451, 32, 75936, 139, 0, 0, 40, 662,
           cc_size=(50, 90)),
        _p("EntityResolution", "entity_resolution", 38.14, 1.41, 256,
           111996, 95550,
           95136, 139994, 16, 95550, 500, 0, 0, 0, 1000,
           cc_size=(50, 90), negated_prob=0.15),
        _p("Bro217", "strings", 1.55, 1.55, 256, 2352, 2352,
           2312, 2312, 16, 2352, 10, 0, 10, 0, 0,
           pattern_len=(10, 22), multi_prob=0.05, multi_size=(2, 5)),
        _p("Dotstar03", "dotstar", 1.92, 1.3, 256, 14245, 12445,
           12144, 12325, 16, 12445, 49, 0, 50, 0, 0,
           pattern_len=(12, 24), dotstar_prob=0.04, multi_prob=0.08,
           multi_size=(2, 4), negated_prob=0.0015, negated_size=(1, 3)),
        _p("Dotstar06", "dotstar", 2.48, 1.28, 256, 16536, 13116,
           12640, 12874, 16, 13116, 51, 0, 53, 0, 0,
           pattern_len=(12, 24), dotstar_prob=0.05, multi_prob=0.10,
           multi_size=(2, 4), negated_prob=0.003, negated_size=(1, 3)),
        _p("Dotstar09", "dotstar", 3.1, 1.29, 256, 17834, 12723,
           12431, 13000, 16, 12723, 50, 0, 51, 0, 0,
           pattern_len=(12, 24), dotstar_prob=0.06, multi_prob=0.12,
           multi_size=(2, 4), negated_prob=0.004, negated_size=(1, 3)),
        _p("Ranges1", "strings", 1.29, 1.29, 115, 12947, 12947,
           12464, 12645, 13, 12947, 50, 0, 52, 0, 0,
           pattern_len=(12, 24), alphabet_size=115, multi_prob=0.07,
           multi_size=(3, 7), ranges=True),
        _p("Ranges05", "strings", 1.21, 1.21, 107, 12990, 12990,
           12439, 12801, 12, 12990, 51, 0, 53, 0, 0,
           pattern_len=(12, 24), alphabet_size=107, multi_prob=0.05,
           multi_size=(3, 7), ranges=True),
        _p("SPM", "negated_strings", 89.4, 1.5, 256, 135675, 100500,
           100500, 130650, 16, 100500, 419, 0, 419, 0, 0,
           pattern_len=(16, 26), negated_prob=0.35, negated_size=(1, 4)),
        _p("BlockRings", "blockrings", 1, 1, 2, 44352, 44352,
           44352, 44352, 2, 44352, 192, 0, 192, 0, 0,
           ring_len=22),
        _p("ExactMath", "strings", 1.002, 1.002, 114, 12439, 12439,
           12439, 12451, 16, 12439, 50, 0, 50, 0, 0,
           pattern_len=(12, 24), alphabet_size=114, multi_prob=0.008,
           multi_size=(2, 2)),
    ]
}

BENCHMARK_NAMES: tuple[str, ...] = tuple(PROFILES)
