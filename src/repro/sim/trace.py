"""Activity statistics collected during simulation.

The paper's energy model is a function of *activity factors*: how many
partitions are enabled each cycle, how many CAM entries are enabled in
each (CAMA-E's selective precharge), how many switch rows are active,
and how often transitions cross partitions (global-switch traffic).
The engine fills a :class:`TraceStats` as it runs; the architecture
models consume only this summary, never the raw per-cycle sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class PartitionAssignment:
    """Maps every state to a partition (tile / state-matching bank).

    ``partition_of[s]`` is the partition id of state ``s``;
    ``num_partitions`` may exceed ``max(partition_of) + 1`` when some
    partitions hold no states of this automaton.  ``weights`` carries a
    per-state cost (CAMA: CAM entries per state) so the trace can
    accumulate enabled *entries*, the quantity CAMA-E's selective
    precharge energy depends on; it defaults to 1 per state.
    """

    partition_of: np.ndarray
    num_partitions: int
    weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        if len(self.partition_of) and self.partition_of.max() >= self.num_partitions:
            raise ValueError("partition id out of range")
        if self.weights is not None and len(self.weights) != len(self.partition_of):
            raise ValueError("weights length must match partition_of")


@dataclass
class TraceStats:
    """Aggregated activity of one simulation run.

    All ``*_sum`` fields are sums over cycles; divide by ``num_cycles``
    for per-cycle averages.
    """

    num_states: int
    num_cycles: int = 0
    num_reports: int = 0
    #: sum over cycles of the number of enabled states (pre-match)
    enabled_states_sum: int = 0
    #: sum over cycles of the number of active states (post-match)
    active_states_sum: int = 0
    #: per-cycle history (kept small: two ints per cycle)
    enabled_per_cycle: list[int] = field(default_factory=list)
    active_per_cycle: list[int] = field(default_factory=list)

    # -- partition-resolved statistics (present when a placement is given)
    num_partitions: int = 0
    #: cycles in which each partition had >= 1 enabled state
    partition_enabled_cycles: np.ndarray | None = None
    #: cycles in which each partition had >= 1 active state (its local
    #: switch is accessed)
    partition_active_cycles: np.ndarray | None = None
    #: total enabled states per partition over all cycles
    partition_enabled_states_sum: np.ndarray | None = None
    #: total enabled *weight* (e.g. CAM entries) per partition over all cycles
    partition_enabled_weight_sum: np.ndarray | None = None
    #: total active states per partition over all cycles
    partition_active_states_sum: np.ndarray | None = None
    #: sum over cycles of partitions driving the global switch
    global_source_partitions_sum: int = 0
    #: sum over cycles of active states with a cross-partition successor
    global_crossing_states_sum: int = 0

    # -- sequential accumulation ------------------------------------------
    def accumulate(self, chunk: "TraceStats") -> "TraceStats":
        """Fold one chunk's statistics into this running stream total.

        Sequential semantics: the chunk continues the same stream
        through the same automaton, so cycle counts add and per-cycle
        histories concatenate.  Partition-resolved fields are all sums
        over cycles, so they add too — a chunked run with a placement
        accumulates to exactly the one-shot statistics (the hardware
        ledger of a streamed session depends on this).  Returns
        ``self`` for chaining.
        """
        if self.num_states != chunk.num_states:
            raise ValueError(
                "cannot accumulate stats across different automata"
            )
        self.num_cycles += chunk.num_cycles
        self.num_reports += chunk.num_reports
        self.enabled_states_sum += chunk.enabled_states_sum
        self.active_states_sum += chunk.active_states_sum
        self.enabled_per_cycle.extend(chunk.enabled_per_cycle)
        self.active_per_cycle.extend(chunk.active_per_cycle)
        if chunk.num_partitions:
            if self.num_partitions == 0:
                # first partition-resolved chunk: adopt its shape
                self.num_partitions = chunk.num_partitions
                self.partition_enabled_cycles = np.zeros(
                    chunk.num_partitions, dtype=np.int64
                )
                self.partition_active_cycles = np.zeros(
                    chunk.num_partitions, dtype=np.int64
                )
                self.partition_enabled_states_sum = np.zeros(
                    chunk.num_partitions, dtype=np.int64
                )
                self.partition_enabled_weight_sum = np.zeros(
                    chunk.num_partitions, dtype=np.float64
                )
                self.partition_active_states_sum = np.zeros(
                    chunk.num_partitions, dtype=np.int64
                )
            elif self.num_partitions != chunk.num_partitions:
                raise ValueError(
                    "cannot accumulate stats across different placements"
                )
            self.partition_enabled_cycles += chunk.partition_enabled_cycles
            self.partition_active_cycles += chunk.partition_active_cycles
            self.partition_enabled_states_sum += (
                chunk.partition_enabled_states_sum
            )
            self.partition_enabled_weight_sum += (
                chunk.partition_enabled_weight_sum
            )
            self.partition_active_states_sum += (
                chunk.partition_active_states_sum
            )
            self.global_source_partitions_sum += (
                chunk.global_source_partitions_sum
            )
            self.global_crossing_states_sum += chunk.global_crossing_states_sum
        return self

    # -- derived averages -------------------------------------------------
    def avg_enabled_states(self) -> float:
        return self.enabled_states_sum / self.num_cycles if self.num_cycles else 0.0

    def avg_active_states(self) -> float:
        return self.active_states_sum / self.num_cycles if self.num_cycles else 0.0

    def avg_enabled_partitions(self) -> float:
        """Average number of partitions with >= 1 enabled state per cycle."""
        if self.partition_enabled_cycles is None or not self.num_cycles:
            return 0.0
        return float(self.partition_enabled_cycles.sum()) / self.num_cycles

    def avg_enabled_states_per_enabled_partition(self) -> float:
        """Average enabled-state count in partitions that are enabled —
        the selective-precharge factor of CAMA-E."""
        if self.partition_enabled_cycles is None:
            return 0.0
        total_cycles = float(self.partition_enabled_cycles.sum())
        if not total_cycles:
            return 0.0
        return float(self.partition_enabled_states_sum.sum()) / total_cycles

    def avg_enabled_weight_per_enabled_partition(self) -> float:
        """Average enabled weight (CAM entries) in enabled partitions."""
        if (
            self.partition_enabled_cycles is None
            or self.partition_enabled_weight_sum is None
        ):
            return 0.0
        total_cycles = float(self.partition_enabled_cycles.sum())
        if not total_cycles:
            return 0.0
        return float(self.partition_enabled_weight_sum.sum()) / total_cycles

    def avg_global_accesses(self) -> float:
        return (
            self.global_source_partitions_sum / self.num_cycles
            if self.num_cycles
            else 0.0
        )

    def report_rate(self) -> float:
        return self.num_reports / self.num_cycles if self.num_cycles else 0.0
