"""Cycle-accurate functional simulation (the VASim role)."""

from repro.sim.backends import (
    BACKEND_NAMES,
    BACKENDS,
    DEFAULT_MAX_KEPT_REPORTS,
    CompiledKernel,
    ExecutionBackend,
    ReportTruncationWarning,
    choose_backend_name,
    get_backend,
)
from repro.sim.buffers import (
    INPUT_BUFFER_ENTRIES,
    OUTPUT_BUFFER_ENTRIES,
    BufferActivity,
    buffer_activity,
    input_interrupts,
    output_interrupts,
)
from repro.sim.engine import (
    Engine,
    EngineState,
    SimulationResult,
    StridedEngine,
    cached_successor_csr,
    gather_successors,
    successor_csr,
)
from repro.sim.reports import Report, report_codes_at, report_positions
from repro.sim.trace import PartitionAssignment, TraceStats

__all__ = [
    "BACKENDS",
    "BACKEND_NAMES",
    "BufferActivity",
    "CompiledKernel",
    "DEFAULT_MAX_KEPT_REPORTS",
    "Engine",
    "EngineState",
    "ExecutionBackend",
    "INPUT_BUFFER_ENTRIES",
    "OUTPUT_BUFFER_ENTRIES",
    "PartitionAssignment",
    "Report",
    "ReportTruncationWarning",
    "SimulationResult",
    "StridedEngine",
    "TraceStats",
    "buffer_activity",
    "cached_successor_csr",
    "choose_backend_name",
    "gather_successors",
    "get_backend",
    "input_interrupts",
    "output_interrupts",
    "report_codes_at",
    "report_positions",
    "successor_csr",
]
