"""Cycle-accurate functional simulation (the VASim role)."""

from repro.sim.buffers import (
    INPUT_BUFFER_ENTRIES,
    OUTPUT_BUFFER_ENTRIES,
    BufferActivity,
    buffer_activity,
    input_interrupts,
    output_interrupts,
)
from repro.sim.engine import (
    Engine,
    EngineState,
    SimulationResult,
    StridedEngine,
    gather_successors,
    successor_csr,
)
from repro.sim.reports import Report, report_codes_at, report_positions
from repro.sim.trace import PartitionAssignment, TraceStats

__all__ = [
    "BufferActivity",
    "Engine",
    "EngineState",
    "INPUT_BUFFER_ENTRIES",
    "OUTPUT_BUFFER_ENTRIES",
    "PartitionAssignment",
    "Report",
    "SimulationResult",
    "StridedEngine",
    "TraceStats",
    "buffer_activity",
    "gather_successors",
    "input_interrupts",
    "output_interrupts",
    "report_codes_at",
    "report_positions",
    "successor_csr",
]
