"""Input/output buffer models (paper §VI.B).

CAMA stages input symbols in a 128-entry buffer and reports in a
64-entry output buffer; each buffer raises a CPU interrupt when it runs
empty (input) or full (output).  The paper sizes the output buffer so
its interrupt rate hides behind the input's on report rates below ~0.5
reports/cycle.  These models turn a simulation's report pattern into
interrupt counts so that sizing argument can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.reports import Report

INPUT_BUFFER_ENTRIES = 128
OUTPUT_BUFFER_ENTRIES = 64


@dataclass(frozen=True)
class BufferActivity:
    """Interrupt behaviour of one run."""

    input_interrupts: int
    output_interrupts: int
    #: True when output interrupts never exceed input interrupts, i.e.
    #: report draining hides behind input refills (the paper's goal).
    output_hidden: bool


def input_interrupts(num_symbols: int, capacity: int = INPUT_BUFFER_ENTRIES) -> int:
    """Number of refill interrupts to stream ``num_symbols`` symbols."""
    if capacity <= 0:
        raise SimulationError("input buffer capacity must be positive")
    return -(-num_symbols // capacity)


def output_interrupts(
    reports: list[Report], capacity: int = OUTPUT_BUFFER_ENTRIES
) -> int:
    """Number of buffer-full interrupts produced by ``reports``.

    Every report occupies one entry (active state id, partition id,
    symbol, cycle — §VI.B); the buffer flushes to the CPU when full.
    """
    if capacity <= 0:
        raise SimulationError("output buffer capacity must be positive")
    return len(reports) // capacity


def buffer_activity(
    num_symbols: int,
    reports: list[Report],
    *,
    input_capacity: int = INPUT_BUFFER_ENTRIES,
    output_capacity: int = OUTPUT_BUFFER_ENTRIES,
) -> BufferActivity:
    """Model both buffers for one run."""
    inputs = input_interrupts(num_symbols, input_capacity)
    outputs = output_interrupts(reports, output_capacity)
    return BufferActivity(
        input_interrupts=inputs,
        output_interrupts=outputs,
        output_hidden=outputs <= inputs,
    )
