"""Reference cycle-accurate simulator for homogeneous NFAs.

This plays the role VASim plays for the paper: it executes an automaton
one input symbol per cycle and records reports plus the activity
statistics the energy models need.  The implementation propagates
*active-state index sets* through precomputed successor arrays, which is
the right trade-off for automata whose per-cycle active fraction is a
few percent (the regime the paper's benchmarks live in).

Per-cycle semantics (identical to AP/CA/Impala/eAP/CAMA):

    enabled(t) = all-input starts
               | start-of-data starts (t == 0 only)
               | successors(active(t-1))
    active(t)  = { s in enabled(t) : input[t] in C(s) }
    reports(t) = active(t) & reporting
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.automata.nfa import Automaton, StartKind
from repro.automata.striding import StridedAutomaton, stride_pairs
from repro.errors import SimulationError
from repro.sim.reports import Report
from repro.sim.trace import PartitionAssignment, TraceStats

_MAX_KEPT_REPORTS = 1_000_000


@dataclass
class SimulationResult:
    """Reports plus activity statistics of one run."""

    reports: list[Report]
    stats: TraceStats

    @property
    def num_reports(self) -> int:
        return self.stats.num_reports


class Engine:
    """Compiled simulator for one :class:`Automaton`."""

    def __init__(self, automaton: Automaton) -> None:
        automaton.validate()
        self.automaton = automaton
        n = len(automaton)
        self._n = n
        # match_table[symbol] is the boolean vector of states accepting it
        # (this is exactly the bit-vector representation of CA/Impala).
        table = np.zeros((256, n), dtype=bool)
        for ste in automaton.states:
            for symbol in ste.symbol_class:
                table[symbol, ste.ste_id] = True
        self._match_table = table
        self._successors = [
            np.fromiter(sorted(automaton.successors(s)), dtype=np.int64, count=-1)
            for s in range(n)
        ]
        self._start_all = np.fromiter(
            (s.ste_id for s in automaton.states if s.start is StartKind.ALL_INPUT),
            dtype=np.int64,
        )
        self._start_sod = np.fromiter(
            (
                s.ste_id
                for s in automaton.states
                if s.start is StartKind.START_OF_DATA
            ),
            dtype=np.int64,
        )
        self._reporting = np.zeros(n, dtype=bool)
        for ste in automaton.states:
            if ste.reporting:
                self._reporting[ste.ste_id] = True
        self._report_codes = [s.report_code for s in automaton.states]

    # -- single-step API (used by the CAMA machine for lock-step checks) --
    def enabled_at(self, active: np.ndarray, first_cycle: bool) -> np.ndarray:
        """Indices of states enabled next cycle, given active indices."""
        parts = [self._start_all]
        if first_cycle:
            parts.append(self._start_sod)
        for s in active:
            parts.append(self._successors[s])
        merged = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        return np.unique(merged)

    def match(self, enabled: np.ndarray, symbol: int) -> np.ndarray:
        """Subset of ``enabled`` whose class contains ``symbol``."""
        if not 0 <= symbol < 256:
            raise SimulationError(f"input symbol out of range: {symbol}")
        return enabled[self._match_table[symbol, enabled]]

    # -- full run ---------------------------------------------------------
    def run(
        self,
        data: bytes,
        *,
        placement: PartitionAssignment | None = None,
        keep_per_cycle: bool = False,
        max_reports: int = _MAX_KEPT_REPORTS,
    ) -> SimulationResult:
        """Simulate ``data`` and return reports plus activity statistics.

        Args:
            data: the input symbol stream.
            placement: optional state->partition map; when given, the
                per-partition activity the energy model needs is recorded.
            keep_per_cycle: retain per-cycle enabled/active counts.
            max_reports: stop *recording* (not counting) reports beyond
                this limit, protecting memory on report-heavy runs.
        """
        stats = TraceStats(num_states=self._n)
        part = cross_any = weights = None
        if placement is not None:
            if len(placement.partition_of) != self._n:
                raise SimulationError(
                    "placement size does not match automaton size"
                )
            part = np.asarray(placement.partition_of, dtype=np.int64)
            if placement.weights is not None:
                weights = np.asarray(placement.weights, dtype=np.float64)
            stats.num_partitions = placement.num_partitions
            stats.partition_enabled_cycles = np.zeros(
                placement.num_partitions, dtype=np.int64
            )
            stats.partition_active_cycles = np.zeros(
                placement.num_partitions, dtype=np.int64
            )
            stats.partition_enabled_states_sum = np.zeros(
                placement.num_partitions, dtype=np.int64
            )
            stats.partition_enabled_weight_sum = np.zeros(
                placement.num_partitions, dtype=np.float64
            )
            stats.partition_active_states_sum = np.zeros(
                placement.num_partitions, dtype=np.int64
            )
            # cross_any[s] is True when s has a successor in another partition
            cross_any = np.zeros(self._n, dtype=bool)
            for s in range(self._n):
                succ = self._successors[s]
                if succ.size and np.any(part[succ] != part[s]):
                    cross_any[s] = True

        reports: list[Report] = []
        active = np.empty(0, dtype=np.int64)
        for cycle, symbol in enumerate(data):
            enabled = self.enabled_at(active, first_cycle=cycle == 0)
            active = self.match(enabled, symbol)

            stats.num_cycles += 1
            stats.enabled_states_sum += int(enabled.size)
            stats.active_states_sum += int(active.size)
            if keep_per_cycle:
                stats.enabled_per_cycle.append(int(enabled.size))
                stats.active_per_cycle.append(int(active.size))
            if part is not None:
                if enabled.size:
                    counts = np.bincount(
                        part[enabled], minlength=stats.num_partitions
                    )
                    stats.partition_enabled_cycles += counts > 0
                    stats.partition_enabled_states_sum += counts
                    if weights is None:
                        stats.partition_enabled_weight_sum += counts
                    else:
                        stats.partition_enabled_weight_sum += np.bincount(
                            part[enabled],
                            weights=weights[enabled],
                            minlength=stats.num_partitions,
                        )
                if active.size:
                    acounts = np.bincount(
                        part[active], minlength=stats.num_partitions
                    )
                    stats.partition_active_states_sum += acounts
                    stats.partition_active_cycles += acounts > 0
                    crossing = active[cross_any[active]]
                    stats.global_crossing_states_sum += int(crossing.size)
                    if crossing.size:
                        stats.global_source_partitions_sum += int(
                            np.unique(part[crossing]).size
                        )

            firing = active[self._reporting[active]]
            stats.num_reports += int(firing.size)
            if firing.size and len(reports) < max_reports:
                for s in firing:
                    reports.append(
                        Report(
                            cycle=cycle,
                            state_id=int(s),
                            code=self._report_codes[int(s)],
                        )
                    )
        return SimulationResult(reports=reports, stats=stats)


class StridedEngine:
    """Simulator for 2-strided automata (16-bit symbol pairs per cycle)."""

    def __init__(self, strided: StridedAutomaton) -> None:
        if not len(strided):
            raise SimulationError("strided automaton has no states")
        self.automaton = strided
        n = len(strided)
        self._n = n
        hi = np.zeros((256, n), dtype=bool)
        lo = np.zeros((256, n), dtype=bool)
        for ste in strided.states:
            for symbol in ste.product.first:
                hi[symbol, ste.ste_id] = True
            for symbol in ste.product.second:
                lo[symbol, ste.ste_id] = True
        self._hi_table = hi
        self._lo_table = lo
        self._successors = [
            np.fromiter(sorted(strided.successors(s)), dtype=np.int64, count=-1)
            for s in range(n)
        ]
        self._start_all = np.fromiter(
            (s.ste_id for s in strided.states if s.start is StartKind.ALL_INPUT),
            dtype=np.int64,
        )
        self._start_sod = np.fromiter(
            (
                s.ste_id
                for s in strided.states
                if s.start is StartKind.START_OF_DATA
            ),
            dtype=np.int64,
        )
        self._reporting = np.zeros(n, dtype=bool)
        for ste in strided.states:
            if ste.reporting:
                self._reporting[ste.ste_id] = True

    def run(
        self,
        data: bytes,
        *,
        placement: PartitionAssignment | None = None,
        keep_per_cycle: bool = False,
    ) -> SimulationResult:
        """Simulate an even-length byte stream, one pair per cycle.

        Reports carry the *original* automaton's reporting-state id and
        original symbol position, so results compare directly against
        the unstrided engine's.
        """
        pairs = stride_pairs(data)
        stats = TraceStats(num_states=self._n)
        part = weights = None
        if placement is not None:
            if len(placement.partition_of) != self._n:
                raise SimulationError(
                    "placement size does not match strided automaton size"
                )
            part = np.asarray(placement.partition_of, dtype=np.int64)
            if placement.weights is not None:
                weights = np.asarray(placement.weights, dtype=np.float64)
            stats.num_partitions = placement.num_partitions
            stats.partition_enabled_cycles = np.zeros(
                placement.num_partitions, dtype=np.int64
            )
            stats.partition_active_cycles = np.zeros(
                placement.num_partitions, dtype=np.int64
            )
            stats.partition_enabled_states_sum = np.zeros(
                placement.num_partitions, dtype=np.int64
            )
            stats.partition_enabled_weight_sum = np.zeros(
                placement.num_partitions, dtype=np.float64
            )
            stats.partition_active_states_sum = np.zeros(
                placement.num_partitions, dtype=np.int64
            )
        reports: set[tuple[int, int]] = set()
        active = np.empty(0, dtype=np.int64)
        states = self.automaton.states
        for stride_idx, (first, second) in enumerate(pairs):
            parts = [self._start_all]
            if stride_idx == 0:
                parts.append(self._start_sod)
            for s in active:
                parts.append(self._successors[s])
            enabled = np.unique(np.concatenate(parts))
            match = self._hi_table[first, enabled] & self._lo_table[second, enabled]
            active = enabled[match]

            stats.num_cycles += 1
            stats.enabled_states_sum += int(enabled.size)
            stats.active_states_sum += int(active.size)
            if keep_per_cycle:
                stats.enabled_per_cycle.append(int(enabled.size))
                stats.active_per_cycle.append(int(active.size))
            if part is not None:
                if enabled.size:
                    counts = np.bincount(
                        part[enabled], minlength=stats.num_partitions
                    )
                    stats.partition_enabled_cycles += counts > 0
                    stats.partition_enabled_states_sum += counts
                    if weights is None:
                        stats.partition_enabled_weight_sum += counts
                    else:
                        stats.partition_enabled_weight_sum += np.bincount(
                            part[enabled],
                            weights=weights[enabled],
                            minlength=stats.num_partitions,
                        )
                if active.size:
                    acounts = np.bincount(
                        part[active], minlength=stats.num_partitions
                    )
                    stats.partition_active_states_sum += acounts
                    stats.partition_active_cycles += acounts > 0

            for s in active[self._reporting[active]]:
                ste = states[int(s)]
                offset = 0 if ste.reports_on_first_half else 1
                reports.add((2 * stride_idx + offset, ste.report_origin))
        stats.num_reports = len(reports)
        out = [
            Report(cycle=cycle, state_id=origin)
            for cycle, origin in sorted(reports)
        ]
        return SimulationResult(reports=out, stats=stats)
