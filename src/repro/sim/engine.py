"""Reference cycle-accurate simulator for homogeneous NFAs.

This plays the role VASim plays for the paper: it executes an automaton
one input symbol per cycle and records reports plus the activity
statistics the energy models need.  Execution itself is delegated to a
pluggable backend (:mod:`repro.sim.backends`): the ``sparse`` kernel
propagates active-state index sets (right for few-percent active
fractions, the paper's benchmark regime), the ``bitparallel`` kernel
steps packed uint64 state bitmaps (right for dense activity), and
``auto`` picks per automaton.

Per-cycle semantics (identical to AP/CA/Impala/eAP/CAMA, and identical
across backends — enforced by the cross-backend property tests):

    enabled(t) = all-input starts
               | start-of-data starts (t == 0 only)
               | successors(active(t-1))
    active(t)  = { s in enabled(t) : input[t] in C(s) }
    reports(t) = active(t) & reporting

Execution is *resumable*: :meth:`Engine.run_chunk` consumes one chunk of
a stream and advances an :class:`EngineState`, so a long input can be
fed piecewise (the service layer in :mod:`repro.service` builds on
this).  ``t == 0`` above means the first symbol of the *stream*, not of
the chunk — ``START_OF_DATA`` states never re-fire at chunk boundaries,
and report cycles are absolute stream offsets.

Reports beyond the kept-reports cap are *counted but not recorded*.
The cap defaults to :data:`DEFAULT_MAX_KEPT_REPORTS` and is
configurable per engine (``max_kept_reports=``); hitting the implicit
cap raises a :class:`ReportTruncationWarning` (or a
:class:`~repro.errors.SimulationError` with ``on_truncation="error"``),
while an explicit per-call ``max_reports`` is taken as intentional.
"""

from __future__ import annotations

import time

import numpy as np

from repro.automata.nfa import Automaton
from repro.automata.striding import StridedAutomaton, stride_pairs
from repro.errors import SimulationError
from repro.sim.backends import (
    DEFAULT_MAX_KEPT_REPORTS,
    BACKEND_NAMES,
    BatchEngineState,
    CompiledKernel,
    EngineState,
    ExecutionBackend,
    PlacementTracker,
    ReportTruncationWarning,
    SimulationResult,
    cached_successor_csr,
    choose_backend_name,
    gather_successors,
    get_backend,
    successor_csr,
)
from repro.sim.backends import bitwords
from repro.sim.backends.base import (
    check_truncation_policy,
    handle_truncation,
    reporting_mask,
    start_ids,
)
from repro.sim.reports import Report
from repro.sim.trace import PartitionAssignment, TraceStats
from repro.telemetry.metrics import default_registry
from repro.telemetry.tracing import current_trace

#: backwards-compatible alias of :data:`DEFAULT_MAX_KEPT_REPORTS`
_MAX_KEPT_REPORTS = DEFAULT_MAX_KEPT_REPORTS

# -- kernel instrumentation (chunk granularity: the per-cycle loops stay
# untouched, so the overhead is a few counter bumps per chunk) ----------
_REGISTRY = default_registry()
_KERNEL_CHUNKS = _REGISTRY.counter(
    "repro_kernel_chunks_total",
    "Chunks executed by the simulation kernels",
    ("backend",),
)
_KERNEL_CYCLES = _REGISTRY.counter(
    "repro_kernel_cycles_total",
    "Input symbols (cycles) consumed by the simulation kernels",
    ("backend",),
)
_KERNEL_REPORTS = _REGISTRY.counter(
    "repro_kernel_reports_total",
    "Reports produced by the simulation kernels",
    ("backend",),
)
_KERNEL_SECONDS = _REGISTRY.histogram(
    "repro_kernel_chunk_seconds",
    "Wall-clock seconds per kernel chunk",
    ("backend",),
)
_KERNEL_BATCHES = _REGISTRY.counter(
    "repro_kernel_batches_total",
    "Batched multi-stream kernel steps (one call, many stream rows)",
    ("backend",),
)


def _kernel_instruments(backend: str):
    return (
        _KERNEL_CHUNKS.labels(backend),
        _KERNEL_CYCLES.labels(backend),
        _KERNEL_REPORTS.labels(backend),
        _KERNEL_SECONDS.labels(backend),
    )


def _observe_chunk(
    instruments, backend: str, elapsed: float, data: bytes, result
) -> None:
    """Record one executed chunk (metrics + an optional trace span)."""
    chunks, cycles, reports, seconds = instruments
    chunks.inc()
    cycles.inc(result.stats.num_cycles)
    reports.inc(result.stats.num_reports)
    seconds.observe(elapsed)
    trace = current_trace()
    if trace is not None:
        trace.add_span(
            "kernel.chunk",
            elapsed,
            backend=backend,
            bytes=len(data),
            cycles=result.stats.num_cycles,
            reports=result.stats.num_reports,
        )


def _cap_message(kept: int, cap: int, what: str) -> str:
    return (
        f"{what} hit the kept-reports cap: recorded {kept} of a stream "
        f"that kept reporting past {cap}; raise max_kept_reports (or pass "
        f"an explicit max_reports) to silence"
    )


class Engine:
    """Compiled simulator for one :class:`Automaton`.

    Args:
        automaton: the automaton to compile.
        backend: execution backend — ``"sparse"`` (default, the
            reference kernel), ``"bitparallel"``, ``"native"`` (the
            compiled C step loop, degrading to bitparallel when
            unavailable), ``"auto"``, or an :class:`ExecutionBackend`
            instance.
        max_kept_reports: recording cap applied when a call does not
            pass its own ``max_reports``.
        on_truncation: what to do when the *implicit* cap truncates
            recording: ``"warn"`` (default), ``"error"`` or ``"ignore"``.
    """

    def __init__(
        self,
        automaton: Automaton,
        *,
        backend: str | ExecutionBackend = "sparse",
        max_kept_reports: int = DEFAULT_MAX_KEPT_REPORTS,
        on_truncation: str = "warn",
    ) -> None:
        if max_kept_reports < 0:
            from repro.errors import ConfigError

            raise ConfigError("max_kept_reports must be >= 0")
        self._kernel = get_backend(backend).compile(automaton)
        self.automaton = automaton
        self.max_kept_reports = max_kept_reports
        self.on_truncation = check_truncation_policy(on_truncation)
        self._instruments = _kernel_instruments(self._kernel.name)

    @classmethod
    def from_kernel(
        cls,
        kernel: CompiledKernel,
        *,
        max_kept_reports: int = DEFAULT_MAX_KEPT_REPORTS,
        on_truncation: str = "warn",
    ) -> "Engine":
        """Wrap an already compiled kernel (e.g. from a loaded artifact).

        The normal constructor compiles; this one does not — it is the
        warm-start path behind :meth:`repro.compile.artifact.
        CompiledArtifact.engine` and the pipeline's kernel prebuild.
        """
        if max_kept_reports < 0:
            raise SimulationError("max_kept_reports must be >= 0")
        engine = cls.__new__(cls)
        engine._kernel = kernel
        engine.automaton = kernel.automaton
        engine.max_kept_reports = max_kept_reports
        engine.on_truncation = check_truncation_policy(on_truncation)
        engine._instruments = _kernel_instruments(kernel.name)
        return engine

    # Metric instruments hold the registry lock and cannot cross a
    # process boundary (spawn-based shard pools pickle whole engines);
    # drop them from the pickled state and rebind on arrival.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_instruments", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._instruments = _kernel_instruments(self._kernel.name)

    @property
    def kernel(self) -> CompiledKernel:
        """The compiled kernel executing this engine's automaton."""
        return self._kernel

    @property
    def backend_name(self) -> str:
        """Resolved kernel name ("sparse", "bitparallel" or "native")."""
        return self._kernel.name

    # -- single-step API (used by the CAMA machine for lock-step checks) --
    def enabled_at(self, active: np.ndarray, first_cycle: bool) -> np.ndarray:
        """Indices of states enabled next cycle, given active indices."""
        return self._kernel.enabled_at(active, first_cycle)

    def match(self, enabled: np.ndarray, symbol: int) -> np.ndarray:
        """Subset of ``enabled`` whose class contains ``symbol``."""
        return self._kernel.match(enabled, symbol)

    # -- resumable execution ---------------------------------------------
    def initial_state(self) -> EngineState:
        """A fresh :class:`EngineState` at stream position 0."""
        return self._kernel.initial_state()

    def run_chunk(
        self,
        data: bytes,
        state: EngineState,
        *,
        placement: PartitionAssignment | None = None,
        keep_per_cycle: bool = False,
        max_reports: int | None = None,
    ) -> SimulationResult:
        """Consume one chunk of a stream, advancing ``state`` in place.

        Semantics are those of :meth:`run` applied to the whole stream:
        ``START_OF_DATA`` states are enabled only when ``state`` is at
        stream position 0, and report cycles are absolute stream
        offsets (``state.position`` plus the chunk-local index).  The
        returned statistics cover only this chunk; accumulate across
        chunks with :func:`repro.service.merge.accumulate_stats`.
        """
        explicit = max_reports is not None
        cap = max_reports if explicit else self.max_kept_reports
        start = time.perf_counter()
        result = self._kernel.run_chunk(
            data,
            state,
            placement=placement,
            keep_per_cycle=keep_per_cycle,
            max_reports=cap,
        )
        _observe_chunk(
            self._instruments,
            self._kernel.name,
            time.perf_counter() - start,
            data,
            result,
        )
        if result.truncated and not explicit:
            handle_truncation(
                self.on_truncation,
                _cap_message(
                    len(result.reports), cap, f"Engine({self.automaton.name!r})"
                ),
            )
        return result

    def step_batch(
        self,
        chunks: list[bytes],
        states: list[EngineState],
        *,
        max_reports=None,
    ) -> list[SimulationResult]:
        """Advance many streams one chunk each in a single kernel call.

        Row ``r`` consumes ``chunks[r]`` against ``states[r]`` (advanced
        in place), with exactly the per-stream :meth:`run_chunk`
        semantics — the batch is an amortization of Python-level
        overhead, not a semantic change; the oracle-differential batch
        tests assert byte-identical results.  ``max_reports`` is one
        shared cap or a per-row budget sequence; as with
        :meth:`run_chunk`, an explicit cap is intentional and silent
        while hitting the implicit engine cap triggers the
        ``on_truncation`` policy.
        """
        if len(chunks) != len(states):
            raise SimulationError(
                f"got {len(chunks)} chunks for {len(states)} stream states"
            )
        explicit = max_reports is not None
        cap = max_reports if explicit else self.max_kept_reports
        batch = BatchEngineState.attach(states, len(self.automaton))
        start = time.perf_counter()
        results = self._kernel.step_batch(chunks, batch, max_reports=cap)
        elapsed = time.perf_counter() - start
        batch.detach_into(states)

        chunk_count, cycles, reports, seconds = self._instruments
        _KERNEL_BATCHES.labels(self._kernel.name).inc()
        chunk_count.inc(len(chunks))
        total_cycles = sum(r.stats.num_cycles for r in results)
        total_reports = sum(r.stats.num_reports for r in results)
        cycles.inc(total_cycles)
        reports.inc(total_reports)
        seconds.observe(elapsed)
        trace = current_trace()
        if trace is not None:
            trace.add_span(
                "kernel.batch",
                elapsed,
                backend=self._kernel.name,
                rows=len(chunks),
                bytes=sum(len(c) for c in chunks),
                cycles=total_cycles,
                reports=total_reports,
            )
        if not explicit:
            hit = sum(1 for r in results if r.truncated)
            if hit:
                handle_truncation(
                    self.on_truncation,
                    f"batched step of Engine({self.automaton.name!r}) hit "
                    f"the kept-reports cap on {hit} of {len(results)} "
                    f"stream rows; raise max_kept_reports (or pass an "
                    f"explicit max_reports) to silence",
                )
        return results

    # -- full run ---------------------------------------------------------
    def run(
        self,
        data: bytes,
        *,
        placement: PartitionAssignment | None = None,
        keep_per_cycle: bool = False,
        max_reports: int | None = None,
    ) -> SimulationResult:
        """Simulate ``data`` and return reports plus activity statistics.

        Args:
            data: the input symbol stream.
            placement: optional state->partition map; when given, the
                per-partition activity the energy model needs is recorded.
            keep_per_cycle: retain per-cycle enabled/active counts.
            max_reports: stop *recording* (not counting) reports beyond
                this limit, protecting memory on report-heavy runs;
                defaults to the engine's ``max_kept_reports``.
        """
        return self.run_chunk(
            data,
            self.initial_state(),
            placement=placement,
            keep_per_cycle=keep_per_cycle,
            max_reports=max_reports,
        )


class StridedEngine:
    """Simulator for 2-strided automata (16-bit symbol pairs per cycle).

    Selects between the built-in execution *strategies* by name:
    ``sparse`` walks active index sets, ``bitparallel`` steps packed
    bitmaps with the stride's match mask formed as ``hi[first] &
    lo[second]``, and ``auto`` picks from the strided automaton's
    estimated activity.  Unlike :class:`Engine`, custom
    :class:`ExecutionBackend` instances are not supported here — the
    product-class match step is strided-specific, so both strategies
    are implemented in this class.
    """

    def __init__(
        self,
        strided: StridedAutomaton,
        *,
        backend: str | ExecutionBackend = "sparse",
        max_kept_reports: int = DEFAULT_MAX_KEPT_REPORTS,
        on_truncation: str = "warn",
    ) -> None:
        if not len(strided):
            raise SimulationError("strided automaton has no states")
        self.automaton = strided
        self.max_kept_reports = max_kept_reports
        self.on_truncation = check_truncation_policy(on_truncation)
        if not isinstance(backend, str):
            raise SimulationError(
                "StridedEngine supports only the built-in execution "
                f"strategies {', '.join(BACKEND_NAMES)}, not custom "
                "backend instances (the product-class match step is "
                "strided-specific)"
            )
        name = backend
        if name == "auto":
            name = choose_backend_name(strided)
        if name == "native":
            # the compiled loop has no strided product-class step;
            # the request degrades to the same packed representation
            name = "bitparallel"
        if name not in ("sparse", "bitparallel"):
            raise SimulationError(
                f"unknown execution backend {name!r}; "
                f"known: {', '.join(BACKEND_NAMES)}"
            )
        self.backend_name = name
        # strided runs get their own metric series: their cycle consumes
        # two input bytes, so mixing them with 1-stride counts would
        # skew cycles-per-chunk ratios
        self._instruments = _kernel_instruments(f"{name}-strided")
        n = len(strided)
        self._n = n
        hi = np.zeros((256, n), dtype=bool)
        lo = np.zeros((256, n), dtype=bool)
        for ste in strided.states:
            for symbol in ste.product.first:
                hi[symbol, ste.ste_id] = True
            for symbol in ste.product.second:
                lo[symbol, ste.ste_id] = True
        self._succ_offsets, self._succ_targets = cached_successor_csr(strided)
        self._start_all, self._start_sod = start_ids(strided)
        self._reporting = reporting_mask(strided)
        if name == "bitparallel":
            # only the packed form is kept; the dense bool tables are
            # construction scaffolding here (2 x 256 x n bytes saved)
            self._hi_table = self._lo_table = None
            self._hi_words = np.stack([bitwords.pack_bool(row) for row in hi])
            self._lo_words = np.stack([bitwords.pack_bool(row) for row in lo])
            self._succ_rows = bitwords.successor_rows(
                self._succ_offsets, self._succ_targets, n
            )
            self._start_all_words = bitwords.pack_indices(self._start_all, n)
            self._start_first_words = (
                self._start_all_words | bitwords.pack_indices(self._start_sod, n)
            )
        else:
            self._hi_table = hi
            self._lo_table = lo

    # Same pickling contract as Engine: metric children are
    # process-local, rebind them against this process's registry.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_instruments", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._instruments = _kernel_instruments(f"{self.backend_name}-strided")

    def run(
        self,
        data: bytes,
        *,
        placement: PartitionAssignment | None = None,
        keep_per_cycle: bool = False,
        max_reports: int | None = None,
    ) -> SimulationResult:
        """Simulate an even-length byte stream, one pair per cycle.

        Reports carry the *original* automaton's reporting-state id and
        original symbol position, so results compare directly against
        the unstrided engine's.  As with :meth:`Engine.run`, reports
        beyond ``max_reports`` are counted but not recorded.
        """
        explicit = max_reports is not None
        cap = max_reports if explicit else self.max_kept_reports
        start_time = time.perf_counter()
        pairs = stride_pairs(data)
        stats = TraceStats(num_states=self._n)
        tracker = None
        if placement is not None:
            tracker = PlacementTracker(
                placement, stats, self._n, what="strided automaton"
            )
        out: list[Report] = []
        truncated = False
        states = self.automaton.states
        if self.backend_name == "bitparallel":
            stepper = self._packed_cycles(pairs)
        else:
            stepper = self._sparse_cycles(pairs)
        for stride_idx, enabled_count, enabled_ids, active in stepper:
            stats.num_cycles += 1
            stats.enabled_states_sum += enabled_count
            stats.active_states_sum += int(active.size)
            if keep_per_cycle:
                stats.enabled_per_cycle.append(enabled_count)
                stats.active_per_cycle.append(int(active.size))
            if tracker is not None:
                tracker.update(enabled_ids(), active)

            # (cycle, origin) keys of distinct strided reporters can
            # collide only within one stride cycle (cycle 2k/2k+1 pairs
            # never recur), so per-cycle dedup is exact and the global
            # report set never needs to be held in memory.
            cycle_hits = {
                (
                    2 * stride_idx
                    + (0 if states[int(s)].reports_on_first_half else 1),
                    states[int(s)].report_origin,
                )
                for s in active[self._reporting[active]]
            }
            stats.num_reports += len(cycle_hits)
            for cycle, origin in sorted(cycle_hits):
                if len(out) < cap:
                    out.append(Report(cycle=cycle, state_id=origin))
                else:
                    truncated = True
        result = SimulationResult(reports=out, stats=stats, truncated=truncated)
        _observe_chunk(
            self._instruments,
            f"{self.backend_name}-strided",
            time.perf_counter() - start_time,
            data,
            result,
        )
        if truncated and not explicit:
            handle_truncation(
                self.on_truncation,
                _cap_message(
                    len(out), cap, f"StridedEngine({self.automaton.name!r})"
                ),
            )
        return result

    def _sparse_cycles(self, pairs):
        """Yield (stride_idx, enabled_count, enabled_ids, active) sparsely."""
        active = np.empty(0, dtype=np.int64)
        for stride_idx, (first, second) in enumerate(pairs):
            succ = gather_successors(
                self._succ_offsets, self._succ_targets, active
            )
            if stride_idx == 0:
                merged = np.concatenate((self._start_all, self._start_sod, succ))
            else:
                merged = np.concatenate((self._start_all, succ))
            enabled = np.unique(merged)
            match = self._hi_table[first, enabled] & self._lo_table[second, enabled]
            active = enabled[match]
            yield stride_idx, int(enabled.size), (lambda e=enabled: e), active

    def _packed_cycles(self, pairs):
        """Yield the same cycle tuples via packed uint64 words."""
        active_ids = np.empty(0, dtype=np.int64)
        enabled_words = np.empty(bitwords.num_words(self._n), dtype=np.uint64)
        for stride_idx, (first, second) in enumerate(pairs):
            bitwords.or_reduce_rows(self._succ_rows, active_ids, enabled_words)
            enabled_words |= (
                self._start_first_words if stride_idx == 0 else self._start_all_words
            )
            active_words = (
                enabled_words & self._hi_words[first] & self._lo_words[second]
            )
            active_ids = bitwords.unpack_indices(active_words)
            yield (
                stride_idx,
                bitwords.popcount(enabled_words),
                (lambda w=enabled_words: bitwords.unpack_indices(w)),
                active_ids,
            )


__all__ = [
    "DEFAULT_MAX_KEPT_REPORTS",
    "BatchEngineState",
    "Engine",
    "EngineState",
    "ReportTruncationWarning",
    "SimulationResult",
    "StridedEngine",
    "cached_successor_csr",
    "gather_successors",
    "successor_csr",
]
