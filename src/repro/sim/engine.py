"""Reference cycle-accurate simulator for homogeneous NFAs.

This plays the role VASim plays for the paper: it executes an automaton
one input symbol per cycle and records reports plus the activity
statistics the energy models need.  The implementation propagates
*active-state index sets* through precomputed successor arrays, which is
the right trade-off for automata whose per-cycle active fraction is a
few percent (the regime the paper's benchmarks live in).

Per-cycle semantics (identical to AP/CA/Impala/eAP/CAMA):

    enabled(t) = all-input starts
               | start-of-data starts (t == 0 only)
               | successors(active(t-1))
    active(t)  = { s in enabled(t) : input[t] in C(s) }
    reports(t) = active(t) & reporting

Execution is *resumable*: :meth:`Engine.run_chunk` consumes one chunk of
a stream and advances an :class:`EngineState`, so a long input can be
fed piecewise (the service layer in :mod:`repro.service` builds on
this).  ``t == 0`` above means the first symbol of the *stream*, not of
the chunk — ``START_OF_DATA`` states never re-fire at chunk boundaries,
and report cycles are absolute stream offsets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.automata.nfa import Automaton, StartKind
from repro.automata.striding import StridedAutomaton, stride_pairs
from repro.errors import SimulationError
from repro.sim.reports import Report
from repro.sim.trace import PartitionAssignment, TraceStats

_MAX_KEPT_REPORTS = 1_000_000

_EMPTY_IDS = np.empty(0, dtype=np.int64)


def successor_csr(automaton, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Flatten per-state successor sets into a CSR pair.

    ``automaton`` is anything with a ``successors(state)`` method over
    dense ids ``0..n-1``.  Returns ``(offsets, targets)`` with
    ``targets[offsets[s]:offsets[s+1]]`` holding state ``s``'s
    successors in ascending order.
    """
    offsets = np.zeros(n + 1, dtype=np.int64)
    flat: list[int] = []
    for s in range(n):
        succ = sorted(automaton.successors(s))
        offsets[s + 1] = offsets[s] + len(succ)
        flat.extend(succ)
    targets = np.asarray(flat, dtype=np.int64)
    return offsets, targets


def gather_successors(
    offsets: np.ndarray, targets: np.ndarray, active: np.ndarray
) -> np.ndarray:
    """Successors of every state in ``active``, gathered without a
    per-state Python loop (and without concatenating per-state slices).

    Builds one flat index vector into ``targets`` by expanding each
    active state's CSR span with ``np.repeat`` arithmetic.
    """
    if not active.size:
        return _EMPTY_IDS
    starts = offsets[active]
    counts = offsets[active + 1] - starts
    total = int(counts.sum())
    if not total:
        return _EMPTY_IDS
    # index = start(s) + (position within s's span), vectorized:
    # repeat each span's start, subtract the exclusive running total so
    # np.arange restarts at 0 at every span boundary.
    cum = np.cumsum(counts)
    index = np.arange(total, dtype=np.int64) + np.repeat(starts - (cum - counts), counts)
    return targets[index]


@dataclass
class EngineState:
    """Resumable execution state of one input stream.

    ``active`` holds the active-state indices after the last consumed
    symbol; ``position`` is the number of stream symbols consumed so
    far.  :meth:`Engine.run_chunk` (and ``CamaMachine.run_chunk``)
    advance a state in place; use :meth:`copy` to snapshot one — e.g. to
    fork a speculative continuation or checkpoint a session.
    """

    active: np.ndarray = field(default_factory=lambda: _EMPTY_IDS)
    position: int = 0

    def copy(self) -> "EngineState":
        return EngineState(active=self.active.copy(), position=self.position)

    @property
    def at_start(self) -> bool:
        """True before any symbol was consumed (START_OF_DATA pending)."""
        return self.position == 0


@dataclass
class SimulationResult:
    """Reports plus activity statistics of one run."""

    reports: list[Report]
    stats: TraceStats

    @property
    def num_reports(self) -> int:
        return self.stats.num_reports


class Engine:
    """Compiled simulator for one :class:`Automaton`."""

    def __init__(self, automaton: Automaton) -> None:
        automaton.validate()
        self.automaton = automaton
        n = len(automaton)
        self._n = n
        # match_table[symbol] is the boolean vector of states accepting it
        # (this is exactly the bit-vector representation of CA/Impala).
        table = np.zeros((256, n), dtype=bool)
        for ste in automaton.states:
            for symbol in ste.symbol_class:
                table[symbol, ste.ste_id] = True
        self._match_table = table
        self._succ_offsets, self._succ_targets = successor_csr(automaton, n)
        self._start_all = np.fromiter(
            (s.ste_id for s in automaton.states if s.start is StartKind.ALL_INPUT),
            dtype=np.int64,
        )
        self._start_sod = np.fromiter(
            (
                s.ste_id
                for s in automaton.states
                if s.start is StartKind.START_OF_DATA
            ),
            dtype=np.int64,
        )
        self._reporting = np.zeros(n, dtype=bool)
        for ste in automaton.states:
            if ste.reporting:
                self._reporting[ste.ste_id] = True
        self._report_codes = [s.report_code for s in automaton.states]

    # -- single-step API (used by the CAMA machine for lock-step checks) --
    def enabled_at(self, active: np.ndarray, first_cycle: bool) -> np.ndarray:
        """Indices of states enabled next cycle, given active indices."""
        succ = gather_successors(self._succ_offsets, self._succ_targets, active)
        if first_cycle:
            merged = np.concatenate((self._start_all, self._start_sod, succ))
        else:
            merged = np.concatenate((self._start_all, succ))
        return np.unique(merged)

    def match(self, enabled: np.ndarray, symbol: int) -> np.ndarray:
        """Subset of ``enabled`` whose class contains ``symbol``."""
        if not 0 <= symbol < 256:
            raise SimulationError(f"input symbol out of range: {symbol}")
        return enabled[self._match_table[symbol, enabled]]

    # -- resumable execution ---------------------------------------------
    def initial_state(self) -> EngineState:
        """A fresh :class:`EngineState` at stream position 0."""
        return EngineState()

    def run_chunk(
        self,
        data: bytes,
        state: EngineState,
        *,
        placement: PartitionAssignment | None = None,
        keep_per_cycle: bool = False,
        max_reports: int = _MAX_KEPT_REPORTS,
    ) -> SimulationResult:
        """Consume one chunk of a stream, advancing ``state`` in place.

        Semantics are those of :meth:`run` applied to the whole stream:
        ``START_OF_DATA`` states are enabled only when ``state`` is at
        stream position 0, and report cycles are absolute stream
        offsets (``state.position`` plus the chunk-local index).  The
        returned statistics cover only this chunk; accumulate across
        chunks with :func:`repro.service.merge.accumulate_stats`.
        """
        stats = TraceStats(num_states=self._n)
        part = cross_any = weights = None
        if placement is not None:
            if len(placement.partition_of) != self._n:
                raise SimulationError(
                    "placement size does not match automaton size"
                )
            part = np.asarray(placement.partition_of, dtype=np.int64)
            if placement.weights is not None:
                weights = np.asarray(placement.weights, dtype=np.float64)
            stats.num_partitions = placement.num_partitions
            stats.partition_enabled_cycles = np.zeros(
                placement.num_partitions, dtype=np.int64
            )
            stats.partition_active_cycles = np.zeros(
                placement.num_partitions, dtype=np.int64
            )
            stats.partition_enabled_states_sum = np.zeros(
                placement.num_partitions, dtype=np.int64
            )
            stats.partition_enabled_weight_sum = np.zeros(
                placement.num_partitions, dtype=np.float64
            )
            stats.partition_active_states_sum = np.zeros(
                placement.num_partitions, dtype=np.int64
            )
            # cross_any[s] is True when s has a successor in another partition
            cross_any = np.zeros(self._n, dtype=bool)
            for s in range(self._n):
                succ = self._succ_targets[
                    self._succ_offsets[s] : self._succ_offsets[s + 1]
                ]
                if succ.size and np.any(part[succ] != part[s]):
                    cross_any[s] = True

        reports: list[Report] = []
        base = state.position
        active = state.active
        for offset, symbol in enumerate(data):
            cycle = base + offset
            enabled = self.enabled_at(active, first_cycle=cycle == 0)
            active = self.match(enabled, symbol)

            stats.num_cycles += 1
            stats.enabled_states_sum += int(enabled.size)
            stats.active_states_sum += int(active.size)
            if keep_per_cycle:
                stats.enabled_per_cycle.append(int(enabled.size))
                stats.active_per_cycle.append(int(active.size))
            if part is not None:
                if enabled.size:
                    counts = np.bincount(
                        part[enabled], minlength=stats.num_partitions
                    )
                    stats.partition_enabled_cycles += counts > 0
                    stats.partition_enabled_states_sum += counts
                    if weights is None:
                        stats.partition_enabled_weight_sum += counts
                    else:
                        stats.partition_enabled_weight_sum += np.bincount(
                            part[enabled],
                            weights=weights[enabled],
                            minlength=stats.num_partitions,
                        )
                if active.size:
                    acounts = np.bincount(
                        part[active], minlength=stats.num_partitions
                    )
                    stats.partition_active_states_sum += acounts
                    stats.partition_active_cycles += acounts > 0
                    crossing = active[cross_any[active]]
                    stats.global_crossing_states_sum += int(crossing.size)
                    if crossing.size:
                        stats.global_source_partitions_sum += int(
                            np.unique(part[crossing]).size
                        )

            firing = active[self._reporting[active]]
            stats.num_reports += int(firing.size)
            if firing.size and len(reports) < max_reports:
                for s in firing:
                    if len(reports) >= max_reports:
                        break
                    reports.append(
                        Report(
                            cycle=cycle,
                            state_id=int(s),
                            code=self._report_codes[int(s)],
                        )
                    )
        state.active = active
        state.position = base + len(data)
        return SimulationResult(reports=reports, stats=stats)

    # -- full run ---------------------------------------------------------
    def run(
        self,
        data: bytes,
        *,
        placement: PartitionAssignment | None = None,
        keep_per_cycle: bool = False,
        max_reports: int = _MAX_KEPT_REPORTS,
    ) -> SimulationResult:
        """Simulate ``data`` and return reports plus activity statistics.

        Args:
            data: the input symbol stream.
            placement: optional state->partition map; when given, the
                per-partition activity the energy model needs is recorded.
            keep_per_cycle: retain per-cycle enabled/active counts.
            max_reports: stop *recording* (not counting) reports beyond
                this limit, protecting memory on report-heavy runs.
        """
        return self.run_chunk(
            data,
            self.initial_state(),
            placement=placement,
            keep_per_cycle=keep_per_cycle,
            max_reports=max_reports,
        )


class StridedEngine:
    """Simulator for 2-strided automata (16-bit symbol pairs per cycle)."""

    def __init__(self, strided: StridedAutomaton) -> None:
        if not len(strided):
            raise SimulationError("strided automaton has no states")
        self.automaton = strided
        n = len(strided)
        self._n = n
        hi = np.zeros((256, n), dtype=bool)
        lo = np.zeros((256, n), dtype=bool)
        for ste in strided.states:
            for symbol in ste.product.first:
                hi[symbol, ste.ste_id] = True
            for symbol in ste.product.second:
                lo[symbol, ste.ste_id] = True
        self._hi_table = hi
        self._lo_table = lo
        self._succ_offsets, self._succ_targets = successor_csr(strided, n)
        self._start_all = np.fromiter(
            (s.ste_id for s in strided.states if s.start is StartKind.ALL_INPUT),
            dtype=np.int64,
        )
        self._start_sod = np.fromiter(
            (
                s.ste_id
                for s in strided.states
                if s.start is StartKind.START_OF_DATA
            ),
            dtype=np.int64,
        )
        self._reporting = np.zeros(n, dtype=bool)
        for ste in strided.states:
            if ste.reporting:
                self._reporting[ste.ste_id] = True

    def run(
        self,
        data: bytes,
        *,
        placement: PartitionAssignment | None = None,
        keep_per_cycle: bool = False,
        max_reports: int = _MAX_KEPT_REPORTS,
    ) -> SimulationResult:
        """Simulate an even-length byte stream, one pair per cycle.

        Reports carry the *original* automaton's reporting-state id and
        original symbol position, so results compare directly against
        the unstrided engine's.  As with :meth:`Engine.run`, reports
        beyond ``max_reports`` are counted but not recorded.
        """
        pairs = stride_pairs(data)
        stats = TraceStats(num_states=self._n)
        part = weights = None
        if placement is not None:
            if len(placement.partition_of) != self._n:
                raise SimulationError(
                    "placement size does not match strided automaton size"
                )
            part = np.asarray(placement.partition_of, dtype=np.int64)
            if placement.weights is not None:
                weights = np.asarray(placement.weights, dtype=np.float64)
            stats.num_partitions = placement.num_partitions
            stats.partition_enabled_cycles = np.zeros(
                placement.num_partitions, dtype=np.int64
            )
            stats.partition_active_cycles = np.zeros(
                placement.num_partitions, dtype=np.int64
            )
            stats.partition_enabled_states_sum = np.zeros(
                placement.num_partitions, dtype=np.int64
            )
            stats.partition_enabled_weight_sum = np.zeros(
                placement.num_partitions, dtype=np.float64
            )
            stats.partition_active_states_sum = np.zeros(
                placement.num_partitions, dtype=np.int64
            )
        out: list[Report] = []
        active = np.empty(0, dtype=np.int64)
        states = self.automaton.states
        for stride_idx, (first, second) in enumerate(pairs):
            succ = gather_successors(
                self._succ_offsets, self._succ_targets, active
            )
            if stride_idx == 0:
                merged = np.concatenate((self._start_all, self._start_sod, succ))
            else:
                merged = np.concatenate((self._start_all, succ))
            enabled = np.unique(merged)
            match = self._hi_table[first, enabled] & self._lo_table[second, enabled]
            active = enabled[match]

            stats.num_cycles += 1
            stats.enabled_states_sum += int(enabled.size)
            stats.active_states_sum += int(active.size)
            if keep_per_cycle:
                stats.enabled_per_cycle.append(int(enabled.size))
                stats.active_per_cycle.append(int(active.size))
            if part is not None:
                if enabled.size:
                    counts = np.bincount(
                        part[enabled], minlength=stats.num_partitions
                    )
                    stats.partition_enabled_cycles += counts > 0
                    stats.partition_enabled_states_sum += counts
                    if weights is None:
                        stats.partition_enabled_weight_sum += counts
                    else:
                        stats.partition_enabled_weight_sum += np.bincount(
                            part[enabled],
                            weights=weights[enabled],
                            minlength=stats.num_partitions,
                        )
                if active.size:
                    acounts = np.bincount(
                        part[active], minlength=stats.num_partitions
                    )
                    stats.partition_active_states_sum += acounts
                    stats.partition_active_cycles += acounts > 0

            # (cycle, origin) keys of distinct strided reporters can
            # collide only within one stride cycle (cycle 2k/2k+1 pairs
            # never recur), so per-cycle dedup is exact and the global
            # report set never needs to be held in memory.
            cycle_hits = {
                (
                    2 * stride_idx
                    + (0 if states[int(s)].reports_on_first_half else 1),
                    states[int(s)].report_origin,
                )
                for s in active[self._reporting[active]]
            }
            stats.num_reports += len(cycle_hits)
            for cycle, origin in sorted(cycle_hits):
                if len(out) < max_reports:
                    out.append(Report(cycle=cycle, state_id=origin))
        return SimulationResult(reports=out, stats=stats)
