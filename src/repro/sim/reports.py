"""Report records emitted by automata simulation."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Report:
    """One report event: ``state_id`` fired at input offset ``cycle``.

    ``cycle`` is the 0-based index of the input symbol that produced the
    report. ``code`` carries the ANML report code when one exists.
    """

    cycle: int
    state_id: int
    code: str | None = None


def report_positions(reports: list[Report]) -> set[tuple[int, int]]:
    """Reduce reports to a set of (cycle, state_id) pairs."""
    return {(r.cycle, r.state_id) for r in reports}


def report_codes_at(reports: list[Report]) -> set[tuple[int, str | None]]:
    """Reduce reports to (cycle, code) pairs — the view transforms must
    preserve even when state identity changes."""
    return {(r.cycle, r.code) for r in reports}
