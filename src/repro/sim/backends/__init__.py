"""Pluggable execution backends for the cycle simulator.

Every way of *running* an automaton lives behind the
:class:`ExecutionBackend` protocol — ``compile(automaton)`` returns a
:class:`CompiledKernel` whose ``run_chunk(data, state)`` advances a
resumable :class:`EngineState` and yields a :class:`StepResult`.  The
engine facade (:class:`repro.sim.engine.Engine`), the service layer and
the CLI all select a backend by name instead of hard-coding one
implementation, so adding a kernel (a C extension, a GPU path) is a
local change.

Shipped backends:

``sparse``
    Active-state index sets over the successor CSR — cost follows the
    active set.  Best at the few-percent active fractions of the
    paper's benchmarks.
``bitparallel``
    Packed uint64 state bitmaps with precomputed per-symbol match masks
    and per-state successor rows — cost follows ``n/64`` words, with no
    sorting.  Best on dense-activity workloads.
``native``
    The bit-parallel step loop compiled to machine code (a C extension
    built at install time, or compiled at runtime via ctypes) — same
    tables, same semantics, no per-cycle interpreter cost.  Degrades
    to ``bitparallel`` when no compiled library is loadable, so it is
    always safe to request.
``auto``
    Picks per automaton (per *shard*, under the dispatcher) from the
    state count and the estimated or measured active fraction; dense
    choices resolve to ``native`` whenever the compiled loop loads.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.backends.auto import (
    DENSE_ACTIVITY_THRESHOLD,
    AutoBackend,
    choose_backend_name,
)
from repro.sim.backends.base import (
    DEFAULT_MAX_KEPT_REPORTS,
    STATE_FORMAT_VERSION,
    BatchEngineState,
    CompiledKernel,
    EngineState,
    ExecutionBackend,
    KernelTables,
    PlacementTracker,
    ReportTruncationWarning,
    SimulationResult,
    StepResult,
    cached_successor_csr,
    clear_csr_cache,
    gather_successors,
    normalize_batch_caps,
    successor_csr,
)
from repro.sim.backends.bitparallel import (
    MAX_BITPARALLEL_STATES,
    BitParallelBackend,
    BitParallelKernel,
)
from repro.sim.backends.native import (
    NativeBackend,
    NativeKernel,
    native_available,
)
from repro.sim.backends.sparse import SparseBackend, SparseKernel

#: the selectable backends, by registry name
BACKENDS: dict[str, ExecutionBackend] = {
    "sparse": SparseBackend(),
    "bitparallel": BitParallelBackend(),
    "native": NativeBackend(),
    "auto": AutoBackend(),
}

#: names accepted wherever a backend is selectable (CLI, service, engine)
BACKEND_NAMES = tuple(BACKENDS)


def get_backend(backend: str | ExecutionBackend) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(backend, str):
        try:
            return BACKENDS[backend]
        except KeyError:
            known = ", ".join(BACKEND_NAMES)
            raise SimulationError(
                f"unknown execution backend {backend!r}; known: {known}"
            ) from None
    if isinstance(backend, ExecutionBackend):
        return backend
    raise SimulationError(
        f"not an execution backend: {backend!r} (expected a name or an "
        f"object with .name and .compile)"
    )


__all__ = [
    "AutoBackend",
    "BACKENDS",
    "BACKEND_NAMES",
    "BitParallelBackend",
    "BitParallelKernel",
    "CompiledKernel",
    "DEFAULT_MAX_KEPT_REPORTS",
    "DENSE_ACTIVITY_THRESHOLD",
    "EngineState",
    "ExecutionBackend",
    "KernelTables",
    "MAX_BITPARALLEL_STATES",
    "NativeBackend",
    "NativeKernel",
    "PlacementTracker",
    "ReportTruncationWarning",
    "SimulationResult",
    "SparseBackend",
    "SparseKernel",
    "StepResult",
    "cached_successor_csr",
    "choose_backend_name",
    "clear_csr_cache",
    "gather_successors",
    "get_backend",
    "native_available",
    "successor_csr",
]
