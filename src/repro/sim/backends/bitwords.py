"""Packed uint64 bitmap helpers for the bit-parallel kernels.

A state set over ``n`` dense ids is represented as ``ceil(n / 64)``
little-endian uint64 words: bit ``s % 64`` of word ``s // 64`` is state
``s``.  Everything here is a thin, allocation-conscious wrapper around
numpy's byte-level primitives (``unpackbits`` / fancy indexing) so the
kernels never drop into per-state Python loops.
"""

from __future__ import annotations

import numpy as np

WORD_BITS = 64

#: per-byte popcount lookup (uint64 words are viewed as 8 uint8 lanes)
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.int64)


def num_words(n: int) -> int:
    """Words needed for ``n`` bits (at least 1, so masks always exist)."""
    return max(1, (n + WORD_BITS - 1) // WORD_BITS)


def zero_words(n: int) -> np.ndarray:
    """An all-zero packed vector sized for ``n`` states."""
    return np.zeros(num_words(n), dtype=np.uint64)


def pack_indices(ids: np.ndarray, n: int) -> np.ndarray:
    """Packed vector with exactly the bits in ``ids`` set."""
    words = np.zeros(num_words(n) * 8, dtype=np.uint8)
    if len(ids):
        ids = np.asarray(ids, dtype=np.int64)
        np.bitwise_or.at(
            words, ids >> 3, np.left_shift(1, ids & 7).astype(np.uint8)
        )
    return words.view(np.uint64)


def pack_bool(mask: np.ndarray) -> np.ndarray:
    """Packed vector of a boolean state vector (index ``s`` = bit ``s``)."""
    n = len(mask)
    padded = np.zeros(num_words(n) * WORD_BITS, dtype=np.uint8)
    padded[:n] = mask
    return np.packbits(padded, bitorder="little").view(np.uint64)


def unpack_indices(words: np.ndarray) -> np.ndarray:
    """Ascending indices of the set bits of a packed vector."""
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return np.nonzero(bits)[0].astype(np.int64)


def popcount(words: np.ndarray) -> int:
    """Number of set bits across a packed vector."""
    return int(_POPCOUNT8[words.view(np.uint8)].sum())


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of a ``(rows, words)`` packed matrix."""
    if words.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0: hardware popcount
        return np.bitwise_count(words).sum(axis=1, dtype=np.int64)
    return _POPCOUNT8[words.view(np.uint8)].reshape(words.shape[0], -1).sum(
        axis=1
    )


def expand_rows(words: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The (row, state) pairs of all set bits of a packed matrix.

    Row-major and bit-ascending within a row — the order a per-row
    :func:`unpack_indices` would produce.  Cost follows the number of
    *nonzero words*, not the matrix size: only set words are expanded
    to bit level, so a sparsely-active batch pays almost nothing.
    """
    word_rows, word_cols = np.nonzero(words)
    if not word_rows.size:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    bits = np.unpackbits(
        words[word_rows, word_cols].view(np.uint8).reshape(-1, 8),
        axis=1,
        bitorder="little",
    )
    pair_idx, bit_idx = np.nonzero(bits)
    return (
        word_rows[pair_idx].astype(np.int64),
        word_cols[pair_idx].astype(np.int64) * WORD_BITS + bit_idx,
    )


def pack_rows(id_lists, n: int) -> np.ndarray:
    """Pack per-row index arrays into a ``(rows, num_words(n))`` matrix.

    The multi-stream analogue of :func:`pack_indices`: one scatter over
    the concatenated ids instead of a per-row Python loop.
    """
    rows = np.zeros((len(id_lists), num_words(n) * 8), dtype=np.uint8)
    counts = np.fromiter(
        (len(ids) for ids in id_lists), dtype=np.int64, count=len(id_lists)
    )
    if counts.sum():
        row_idx = np.repeat(np.arange(len(id_lists), dtype=np.int64), counts)
        ids = np.concatenate(
            [np.asarray(ids, dtype=np.int64) for ids in id_lists if len(ids)]
        )
        np.bitwise_or.at(
            rows, (row_idx, ids >> 3), np.left_shift(1, ids & 7).astype(np.uint8)
        )
    return rows.view(np.uint64)


def unpack_rows(words: np.ndarray, n: int) -> list[np.ndarray]:
    """Per-row ascending set-bit indices of a ``(rows, words)`` matrix."""
    if words.shape[0] == 0:
        return []
    bits = np.unpackbits(words.view(np.uint8), axis=1, bitorder="little")[:, :n]
    row_idx, ids = np.nonzero(bits)
    counts = np.bincount(row_idx, minlength=words.shape[0])
    return np.split(ids.astype(np.int64), np.cumsum(counts)[:-1])


def any_bits(words: np.ndarray) -> bool:
    """True when at least one bit is set."""
    return bool(words.any())


def successor_rows(offsets: np.ndarray, targets: np.ndarray, n: int) -> np.ndarray:
    """Per-state packed successor bitmaps, shape ``(n, num_words(n))``.

    Row ``s`` has bit ``t`` set iff ``s -> t`` is a transition; the
    enable step of the bit-parallel kernel ORs the rows of the active
    states, replacing the CSR gather + sort of the sparse kernel.
    """
    w = num_words(n)
    rows = np.zeros((n, w * 8), dtype=np.uint8)
    for s in range(n):
        succ = targets[offsets[s] : offsets[s + 1]]
        if succ.size:
            np.bitwise_or.at(
                rows[s],
                succ >> 3,
                np.left_shift(1, succ & 7).astype(np.uint8),
            )
    return rows.view(np.uint64)


def or_reduce_rows(rows: np.ndarray, ids: np.ndarray, out: np.ndarray) -> np.ndarray:
    """OR the packed rows selected by ``ids`` into ``out`` (in place)."""
    if len(ids):
        np.bitwise_or.reduce(rows[ids], axis=0, out=out)
    else:
        out[:] = 0
    return out
