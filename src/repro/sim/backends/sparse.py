"""The sparse active-set backend (the original reference kernel).

Propagates *active-state index sets* through the successor CSR: per
cycle, gather the successors of the active set, merge the start states,
``np.unique`` the result and filter it through the per-symbol match
table.  Cost scales with the number of active states and their out
degree — the right trade-off for the few-percent active fractions of
the paper's benchmark regime, and the wrong one for dense activity,
where :mod:`repro.sim.backends.bitparallel` takes over.

Batched multi-stream execution (``step_batch``) uses the base class's
per-row loop fallback: the sparse kernel has no 2-D vectorized form,
but the batch API stays correct and backend-portable (the
oracle-differential batch tests run it against the same oracle).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sim.backends.base import (
    DEFAULT_MAX_KEPT_REPORTS,
    CompiledKernel,
    EngineState,
    KernelTables,
    PlacementTracker,
    StepResult,
    append_reports,
    cached_successor_csr,
    gather_successors,
    match_table,
    reporting_mask,
    start_ids,
)
from repro.sim.reports import Report
from repro.sim.trace import PartitionAssignment, TraceStats


class SparseKernel(CompiledKernel):
    """Compiled sparse simulator for one :class:`Automaton`."""

    name = "sparse"

    def __init__(self, automaton, *, tables: KernelTables | None = None) -> None:
        if tables is None:
            automaton.validate()
        super().__init__(automaton)
        n = len(automaton)
        self._n = n
        if tables is None:
            self._match_table = match_table(automaton)
            self._succ_offsets, self._succ_targets = cached_successor_csr(
                automaton
            )
            self._start_all, self._start_sod = start_ids(automaton)
            self._reporting = reporting_mask(automaton)
            self._report_codes = [s.report_code for s in automaton.states]
        else:
            # prebuilt tables (a loaded artifact): skip every derivation
            tables.check(n)
            self._match_table = tables.match_bool(n)
            self._succ_offsets = tables.succ_offsets
            self._succ_targets = tables.succ_targets
            self._start_all = tables.start_all
            self._start_sod = tables.start_sod
            self._reporting = tables.reporting
            self._report_codes = list(tables.report_codes)

    def export_tables(self) -> KernelTables:
        """This kernel's structures in the serializable interchange form."""
        from repro.sim.backends import bitwords

        return KernelTables(
            match_words=np.stack(
                [bitwords.pack_bool(row) for row in self._match_table]
            ),
            succ_offsets=self._succ_offsets,
            succ_targets=self._succ_targets,
            start_all=self._start_all,
            start_sod=self._start_sod,
            reporting=self._reporting,
            report_codes=list(self._report_codes),
        )

    # -- single-step API (used by the CAMA machine for lock-step checks) --
    def enabled_at(self, active: np.ndarray, first_cycle: bool) -> np.ndarray:
        """Indices of states enabled next cycle, given active indices."""
        succ = gather_successors(self._succ_offsets, self._succ_targets, active)
        if first_cycle:
            merged = np.concatenate((self._start_all, self._start_sod, succ))
        else:
            merged = np.concatenate((self._start_all, succ))
        return np.unique(merged)

    def match(self, enabled: np.ndarray, symbol: int) -> np.ndarray:
        """Subset of ``enabled`` whose class contains ``symbol``."""
        if not 0 <= symbol < 256:
            raise SimulationError(f"input symbol out of range: {symbol}")
        return enabled[self._match_table[symbol, enabled]]

    # -- resumable execution ---------------------------------------------
    def run_chunk(
        self,
        data: bytes,
        state: EngineState,
        *,
        placement: PartitionAssignment | None = None,
        keep_per_cycle: bool = False,
        max_reports: int = DEFAULT_MAX_KEPT_REPORTS,
    ) -> StepResult:
        stats = TraceStats(num_states=self._n)
        tracker = None
        if placement is not None:
            tracker = PlacementTracker(
                placement,
                stats,
                self._n,
                succ=(self._succ_offsets, self._succ_targets),
            )

        reports: list[Report] = []
        truncated = False
        base = state.position
        active = state.active
        for offset, symbol in enumerate(data):
            cycle = base + offset
            enabled = self.enabled_at(active, first_cycle=cycle == 0)
            active = self.match(enabled, symbol)

            stats.num_cycles += 1
            stats.enabled_states_sum += int(enabled.size)
            stats.active_states_sum += int(active.size)
            if keep_per_cycle:
                stats.enabled_per_cycle.append(int(enabled.size))
                stats.active_per_cycle.append(int(active.size))
            if tracker is not None:
                tracker.update(enabled, active)

            firing = active[self._reporting[active]]
            stats.num_reports += int(firing.size)
            if firing.size:
                truncated |= append_reports(
                    reports, firing, cycle, self._report_codes, max_reports
                )
        state.active = active
        state.position = base + len(data)
        return StepResult(reports=reports, stats=stats, truncated=truncated)


class SparseBackend:
    """Backend producing :class:`SparseKernel`\\ s."""

    name = "sparse"

    def compile(self, automaton) -> SparseKernel:
        from repro.sim.backends.base import KERNEL_COMPILES

        KERNEL_COMPILES.labels(self.name).inc()
        return SparseKernel(automaton)

    def from_tables(self, automaton, tables: KernelTables) -> SparseKernel:
        """Rebuild a kernel from prebuilt (artifact) tables."""
        return SparseKernel(automaton, tables=tables)
