"""The native compiled backend: the bit-parallel step loop in C.

``cama_kernel.c`` (next to this module) implements the packed-uint64
cycle — successor-row OR-reduce, per-symbol match mask AND, report
extraction — as one plain-C function called through ctypes, removing
the per-cycle numpy dispatch the pure-python :class:`BitParallelKernel`
pays.  The shared object is found two ways, tried in order:

1. the extension module ``repro.sim.backends._cama_native`` built at
   install time by ``setup.py`` (its Python surface is an empty shell;
   only the shared object's exported symbol matters);
2. a runtime build — ``cc -O3 -shared -fPIC`` into a per-user cache
   keyed by the source digest — for source checkouts that never ran
   an install but do have a compiler.

When neither works (no compiler, no prebuilt extension, or
``REPRO_NATIVE=0``), everything degrades cleanly: ``NativeBackend``
hands out plain :class:`BitParallelKernel` objects, so ``backend=
"native"`` is always safe to request and artifacts compiled with the
native kernel load anywhere.

:class:`NativeKernel` subclasses the bit-parallel kernel: tables,
state interchange and the observability surface are shared, and any
feature the C loop doesn't implement (placement tracking, per-cycle
statistics) transparently falls back to the numpy path.  Semantics
are pinned byte-for-byte by the differential oracle suite.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path

import numpy as np

from repro.errors import SimulationError
from repro.sim.backends import bitwords
from repro.sim.backends.base import (
    DEFAULT_MAX_KEPT_REPORTS,
    BatchEngineState,
    EngineState,
    KernelTables,
    StepResult,
    normalize_batch_caps,
)
from repro.sim.backends.bitparallel import BitParallelBackend, BitParallelKernel
from repro.sim.reports import Report
from repro.sim.trace import PartitionAssignment, TraceStats
from repro.telemetry.metrics import default_registry

#: set to ``0``/``off``/``false`` to force the pure-python fallback
#: (also how CI simulates a compiler-less host)
ENV_SWITCH = "REPRO_NATIVE"

#: report-buffer floor: large enough that buffer drains are rare, small
#: enough (64 KB of int64 pairs) to allocate per call without thought
_REPORT_BUFFER_FLOOR = 4096

_SOURCE_PATH = Path(__file__).with_name("cama_kernel.c")
_EXT_MODULE = "repro.sim.backends._cama_native"

_NATIVE_FALLBACKS = default_registry().counter(
    "repro_native_fallbacks_total",
    "Native-kernel requests served by the pure-numpy kernel instead",
    ("cause",),
)

_load_lock = threading.Lock()
_loaded: "ctypes.CDLL | None | bool" = False  # False = not probed yet
_load_error: str | None = None


def _disabled_by_env() -> bool:
    return os.environ.get(ENV_SWITCH, "").strip().lower() in (
        "0",
        "off",
        "no",
        "false",
    )


def _prebuilt_path() -> Path | None:
    """The install-time extension's shared object, if one was built."""
    import importlib.util

    try:
        spec = importlib.util.find_spec(_EXT_MODULE)
    except (ImportError, ValueError):
        return None
    if spec is None or not spec.origin:
        return None
    path = Path(spec.origin)
    if path.suffix not in (".so", ".dylib", ".pyd"):
        return None
    return path if path.exists() else None


def _runtime_build() -> Path | None:
    """Compile the C source into a digest-keyed per-user cache."""
    compiler = (
        os.environ.get("CC")
        or shutil.which("cc")
        or shutil.which("gcc")
        or shutil.which("clang")
    )
    if compiler is None or not _SOURCE_PATH.exists():
        return None
    digest = hashlib.sha256(_SOURCE_PATH.read_bytes()).hexdigest()[:16]
    uid = getattr(os, "getuid", lambda: 0)()
    cache_dir = Path(
        os.environ.get("REPRO_NATIVE_CACHE")
        or Path(tempfile.gettempdir()) / f"repro-native-{uid}"
    )
    lib_path = cache_dir / f"cama_kernel-{digest}.so"
    if lib_path.exists():
        return lib_path
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        # build to a pid-suffixed temp name, publish with an atomic
        # rename: concurrent processes race harmlessly
        tmp_path = lib_path.with_name(f"{lib_path.name}.tmp{os.getpid()}")
        subprocess.run(
            [
                compiler,
                "-O3",
                "-shared",
                "-fPIC",
                "-o",
                str(tmp_path),
                str(_SOURCE_PATH),
            ],
            check=True,
            capture_output=True,
            timeout=120,
        )
        os.replace(tmp_path, lib_path)
    except (OSError, subprocess.SubprocessError):
        return None
    return lib_path


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    fn = lib.cama_run_chunk
    fn.restype = ctypes.c_int64
    fn.argtypes = [
        ctypes.c_void_p,  # match_words
        ctypes.c_void_p,  # succ_rows
        ctypes.c_void_p,  # start_all
        ctypes.c_void_p,  # start_first
        ctypes.c_void_p,  # reporting
        ctypes.c_int64,  # words
        ctypes.c_int64,  # nrep_total
        ctypes.c_void_p,  # data
        ctypes.c_int64,  # length
        ctypes.c_int64,  # start_offset
        ctypes.c_int64,  # base_cycle
        ctypes.c_void_p,  # active
        ctypes.c_void_p,  # scratch
        ctypes.c_int64,  # budget
        ctypes.c_void_p,  # rep_cycles
        ctypes.c_void_p,  # rep_states
        ctypes.c_int64,  # rep_capacity
        ctypes.c_void_p,  # counters
    ]
    return lib


def load_native() -> "ctypes.CDLL | None":
    """The bound native library, or None when unavailable.

    Probed once per process (thread-safe) and cached; the probe order
    is prebuilt extension, then runtime compile.
    """
    global _loaded, _load_error
    if _loaded is not False:
        return _loaded
    with _load_lock:
        if _loaded is not False:
            return _loaded
        if _disabled_by_env():
            _loaded = None
            _load_error = f"disabled via {ENV_SWITCH}"
            return None
        for locate in (_prebuilt_path, _runtime_build):
            path = locate()
            if path is None:
                continue
            try:
                _loaded = _bind(ctypes.CDLL(str(path)))
            except (OSError, AttributeError) as exc:
                _load_error = f"{path}: {exc}"
                continue
            return _loaded
        _loaded = None
        if _load_error is None:
            _load_error = "no prebuilt extension and no C compiler found"
        return None


def native_available() -> bool:
    """True when the compiled step loop is loadable in this process."""
    return load_native() is not None


def native_status() -> str:
    """One-line availability summary (for diagnostics and tests)."""
    if native_available():
        return "native kernel loaded"
    return f"native kernel unavailable: {_load_error}"


def _reset_probe_cache() -> None:
    """Forget the load result (test hook: re-probe under a new env)."""
    global _loaded, _load_error
    with _load_lock:
        _loaded = False
        _load_error = None


class NativeKernel(BitParallelKernel):
    """The bit-parallel kernel with its cycle loop in compiled C.

    Tables, interchange state and statistics are inherited; only the
    hot loop differs.  Runs that need per-cycle visibility —
    ``placement`` tracking or ``keep_per_cycle`` — use the inherited
    numpy path, so the whole engine feature surface keeps working.
    """

    name = "native"

    def __init__(self, automaton, *, tables: KernelTables | None = None) -> None:
        super().__init__(automaton, tables=tables)
        self._bind_native()

    def _bind_native(self) -> None:
        self._lib = load_native()
        self._nrep_total = int(bitwords.popcount(self._reporting_words))
        # the exact C-contiguous uint64 buffers the C loop reads; when
        # the inherited tables are already contiguous these are views
        self._c_match = np.ascontiguousarray(self._match_words, dtype=np.uint64)
        self._c_succ = np.ascontiguousarray(self._succ_rows, dtype=np.uint64)
        self._c_start_all = np.ascontiguousarray(
            self._start_all_words, dtype=np.uint64
        )
        self._c_start_first = np.ascontiguousarray(
            self._start_first_words, dtype=np.uint64
        )
        self._c_reporting = np.ascontiguousarray(
            self._reporting_words, dtype=np.uint64
        )

    # ctypes handles don't pickle; drop them and re-probe on arrival.
    # A kernel landing on a host without the native library keeps
    # working: _lib stays None and run_chunk uses the numpy path.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        for key in (
            "_lib",
            "_c_match",
            "_c_succ",
            "_c_start_all",
            "_c_start_first",
            "_c_reporting",
        ):
            state.pop(key, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._bind_native()

    def _report_buffers(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        # capacity >= nrep_total guarantees the C loop always makes
        # progress (see the pause contract in cama_kernel.c)
        capacity = max(_REPORT_BUFFER_FLOOR, self._nrep_total)
        return (
            np.empty(self._num_words, dtype=np.uint64),
            np.empty(capacity, dtype=np.int64),
            np.empty(capacity, dtype=np.int64),
        )

    def _step_words(
        self,
        words: np.ndarray,
        symbols: np.ndarray,
        base: int,
        budget: int,
        reports: list[Report],
        scratch: np.ndarray,
        rep_cycles: np.ndarray,
        rep_states: np.ndarray,
    ) -> tuple[int, int, int, bool]:
        """Drive the C loop over one stream's chunk, draining the
        bounded report buffer whenever the C side pauses on it.

        ``words`` is stepped in place; returns ``(enabled_states_sum,
        active_states_sum, reports_fired, truncated)``.
        """
        lib = self._lib
        length = int(symbols.size)
        capacity = int(rep_cycles.size)
        counters = np.zeros(5, dtype=np.int64)
        codes = self._report_codes
        enabled_sum = active_sum = fired = 0
        truncated = False
        offset = 0
        while offset < length:
            counters[:] = 0
            next_offset = lib.cama_run_chunk(
                self._c_match.ctypes.data,
                self._c_succ.ctypes.data,
                self._c_start_all.ctypes.data,
                self._c_start_first.ctypes.data,
                self._c_reporting.ctypes.data,
                self._num_words,
                self._nrep_total,
                symbols.ctypes.data,
                length,
                offset,
                base,
                words.ctypes.data,
                scratch.ctypes.data,
                budget,
                rep_cycles.ctypes.data,
                rep_states.ctypes.data,
                capacity,
                counters.ctypes.data,
            )
            enabled_sum += int(counters[0])
            active_sum += int(counters[1])
            fired += int(counters[2])
            recorded = int(counters[3])
            truncated |= bool(counters[4])
            if recorded:
                budget -= recorded
                reports.extend(
                    Report(cycle=cycle, state_id=state, code=codes[state])
                    for cycle, state in zip(
                        rep_cycles[:recorded].tolist(),
                        rep_states[:recorded].tolist(),
                    )
                )
            if next_offset <= offset and not recorded:
                raise SimulationError(
                    "native kernel made no progress (corrupt build?)"
                )
            offset = int(next_offset)
        return enabled_sum, active_sum, fired, truncated

    def run_chunk(
        self,
        data: bytes,
        state: EngineState,
        *,
        placement: PartitionAssignment | None = None,
        keep_per_cycle: bool = False,
        max_reports: int = DEFAULT_MAX_KEPT_REPORTS,
    ) -> StepResult:
        if self._lib is None or placement is not None or keep_per_cycle:
            # per-cycle visibility isn't surfaced by the C loop
            return super().run_chunk(
                data,
                state,
                placement=placement,
                keep_per_cycle=keep_per_cycle,
                max_reports=max_reports,
            )
        stats = TraceStats(num_states=self._n)
        reports: list[Report] = []
        truncated = False
        base = state.position
        if len(data):
            symbols = np.frombuffer(data, dtype=np.uint8)
            words = bitwords.pack_indices(
                np.asarray(state.active, dtype=np.int64), self._n
            )
            scratch, rep_cycles, rep_states = self._report_buffers()
            enabled_sum, active_sum, fired, truncated = self._step_words(
                words,
                symbols,
                base,
                max_reports,
                reports,
                scratch,
                rep_cycles,
                rep_states,
            )
            stats.num_cycles = len(data)
            stats.enabled_states_sum = enabled_sum
            stats.active_states_sum = active_sum
            stats.num_reports = fired
            state.active = bitwords.unpack_indices(words)
        else:
            state.active = np.asarray(state.active, dtype=np.int64)
        state.position = base + len(data)
        return StepResult(reports=reports, stats=stats, truncated=truncated)

    def step_batch(
        self,
        chunks: list[bytes],
        batch: BatchEngineState,
        *,
        max_reports=DEFAULT_MAX_KEPT_REPORTS,
    ) -> list[StepResult]:
        """Advance every stream row one chunk, each row in native code.

        Rows of a batch are independent streams, so the C chunk loop
        runs row by row directly on the batch's packed matrix.  The
        per-cycle interpreter overhead the numpy ``step_batch``
        amortizes across rows is already gone in C, and per-row
        semantics stay exactly :meth:`run_chunk`'s.
        """
        if self._lib is None:
            return super().step_batch(chunks, batch, max_reports=max_reports)
        num_rows = batch.num_rows
        if len(chunks) != num_rows:
            raise SimulationError(
                f"got {len(chunks)} chunks for {num_rows} batch rows"
            )
        caps = normalize_batch_caps(max_reports, num_rows)
        words = np.ascontiguousarray(batch.active_words, dtype=np.uint64)
        scratch, rep_cycles, rep_states = self._report_buffers()
        results = []
        for row in range(num_rows):
            chunk = chunks[row]
            reports: list[Report] = []
            stats = TraceStats(num_states=self._n)
            truncated = False
            if len(chunk):
                symbols = np.frombuffer(chunk, dtype=np.uint8)
                enabled_sum, active_sum, fired, truncated = self._step_words(
                    words[row],
                    symbols,
                    int(batch.positions[row]),
                    caps[row],
                    reports,
                    scratch,
                    rep_cycles,
                    rep_states,
                )
                stats.num_cycles = len(chunk)
                stats.enabled_states_sum = enabled_sum
                stats.active_states_sum = active_sum
                stats.num_reports = fired
                batch.positions[row] += len(chunk)
            batch.reports_recorded[row] += len(reports)
            results.append(
                StepResult(reports=reports, stats=stats, truncated=truncated)
            )
        batch.active_words = words
        return results


class NativeBackend:
    """Backend producing :class:`NativeKernel`\\ s when the compiled
    library loads, plain :class:`BitParallelKernel`\\ s otherwise —
    requesting ``backend="native"`` is always safe."""

    name = "native"

    def compile(self, automaton):
        from repro.sim.backends.base import KERNEL_COMPILES

        KERNEL_COMPILES.labels(self.name).inc()
        if load_native() is None:
            _NATIVE_FALLBACKS.labels("compile").inc()
            return BitParallelKernel(automaton)
        return NativeKernel(automaton)

    def from_tables(self, automaton, tables: KernelTables):
        """Rebuild a kernel from prebuilt (artifact) tables."""
        if load_native() is None:
            _NATIVE_FALLBACKS.labels("from_tables").inc()
            return BitParallelKernel(automaton, tables=tables)
        return NativeKernel(automaton, tables=tables)


def dense_backend() -> "NativeBackend | BitParallelBackend":
    """The packed-bitmap backend family's best member on this host:
    native when the compiled loop loads, pure-numpy otherwise.  The
    ``auto`` policy and artifact loading both resolve through this."""
    if native_available():
        return NativeBackend()
    return BitParallelBackend()
