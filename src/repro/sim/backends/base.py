"""Shared contracts and plumbing of the execution backends.

An :class:`ExecutionBackend` turns an automaton into a
:class:`CompiledKernel`; a kernel consumes chunks of an input stream,
advancing an :class:`EngineState` and producing :class:`StepResult`\\ s
(reports + activity statistics).  Everything every kernel agrees on
lives here:

* the resumable :class:`EngineState` (active-state *indices* + stream
  position — the interchange format, so a session snapshot taken under
  one backend resumes under another);
* the :class:`StepResult` / :class:`SimulationResult` contract,
  including the exact ``max_reports`` recording-cap semantics and the
  ``truncated`` flag;
* the successor CSR builders and the fingerprint-keyed CSR cache that
  lets repeated compilations of an identical ruleset skip the O(states
  + transitions) rebuild;
* the placement-resolved activity tracking the energy models consume.

:mod:`repro.sim.engine` re-exports the public names for backwards
compatibility; new code should import from :mod:`repro.sim.backends`.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.automata.nfa import StartKind
from repro.errors import SimulationError
from repro.sim.reports import Report
from repro.sim.trace import PartitionAssignment, TraceStats
from repro.telemetry.metrics import default_registry

#: default cap on *recorded* (not counted) reports per run/chunk call
DEFAULT_MAX_KEPT_REPORTS = 1_000_000

#: kernel compilations by backend, bumped by each backend's compile()
KERNEL_COMPILES = default_registry().counter(
    "repro_kernel_compiles_total",
    "Kernels compiled, by execution backend",
    ("backend",),
)

_TRUNCATIONS = default_registry().counter(
    "repro_report_truncations_total",
    "Runs that hit the kept-reports cap, by configured policy",
    ("policy",),
)

_EMPTY_IDS = np.empty(0, dtype=np.int64)

#: serialization format version of :meth:`EngineState.to_dict` (and of
#: the batch SoA snapshots derived from it); bump on layout changes so
#: persisted snapshots fail loudly instead of resuming corrupt
STATE_FORMAT_VERSION = 1


class ReportTruncationWarning(UserWarning):
    """A run hit its kept-reports cap and silently stopped recording."""


TRUNCATION_POLICIES = ("warn", "error", "ignore")


def check_truncation_policy(on_truncation: str) -> str:
    """Validate an ``on_truncation`` argument, returning it unchanged."""
    if on_truncation not in TRUNCATION_POLICIES:
        from repro.errors import ConfigError

        raise ConfigError(
            f"unknown truncation policy {on_truncation!r}; "
            f"expected one of {', '.join(TRUNCATION_POLICIES)}"
        )
    return on_truncation


def handle_truncation(
    on_truncation: str, message: str, *, stacklevel: int = 3
) -> None:
    """React to a hit kept-reports cap per the configured policy."""
    _TRUNCATIONS.labels(on_truncation).inc()
    if on_truncation == "error":
        raise SimulationError(message)
    if on_truncation == "warn":
        warnings.warn(message, ReportTruncationWarning, stacklevel=stacklevel)


# -- resumable state and results ------------------------------------------


@dataclass
class EngineState:
    """Resumable execution state of one input stream.

    ``active`` holds the active-state indices after the last consumed
    symbol; ``position`` is the number of stream symbols consumed so
    far.  ``Engine.run_chunk`` (and ``CamaMachine.run_chunk``) advance a
    state in place; use :meth:`copy` to snapshot one — e.g. to fork a
    speculative continuation or checkpoint a session.  Indices (not
    packed bitmaps) are the interchange format: every backend accepts
    and produces them, so states migrate freely between backends.
    """

    active: np.ndarray = field(default_factory=lambda: _EMPTY_IDS)
    position: int = 0

    def copy(self) -> "EngineState":
        return EngineState(active=self.active.copy(), position=self.position)

    @property
    def at_start(self) -> bool:
        """True before any symbol was consumed (START_OF_DATA pending)."""
        return self.position == 0

    def to_dict(self) -> dict:
        """JSON-serializable snapshot, stamped with the format version.

        The persistence form behind checkpoint/resume: chaos-resumable
        streams and batch SoA snapshots both go through it, so the
        layout can only evolve behind a :data:`STATE_FORMAT_VERSION`
        bump (:meth:`from_dict` rejects skew instead of resuming a
        stream from a misread layout).
        """
        return {
            "format_version": STATE_FORMAT_VERSION,
            "active": [int(s) for s in self.active],
            "position": int(self.position),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EngineState":
        """Rebuild a snapshot, refusing version skew."""
        version = data.get("format_version")
        if version != STATE_FORMAT_VERSION:
            raise SimulationError(
                f"engine-state snapshot has format version {version!r}; "
                f"this build reads version {STATE_FORMAT_VERSION} — "
                f"re-snapshot under the current build"
            )
        return cls(
            active=np.asarray(data["active"], dtype=np.int64),
            position=int(data["position"]),
        )


@dataclass
class BatchEngineState:
    """Struct-of-arrays state of many streams sharing one automaton.

    Row ``r`` is one stream: ``active_words[r]`` is its packed active
    bitmap (``num_words(num_states)`` uint64 words), ``positions[r]``
    its absolute stream position, ``reports_recorded[r]`` a running
    count of reports recorded for it across batch steps (the scheduler
    uses it for per-row budget bookkeeping).  This is the software CAMA
    array: one ``step_batch`` call advances every row with 2-D word
    operations, amortizing per-call overhead the way one CAM search
    amortizes over all stored state rows.

    :meth:`attach` / :meth:`detach` convert losslessly to and from the
    per-stream :class:`EngineState` interchange form, so snapshots,
    resume and the sharded dispatcher keep working unchanged — a batch
    is a view a kernel holds for the duration of one step, not a new
    persistence format.
    """

    #: packed active bitmaps, shape ``(rows, num_words(num_states))``
    active_words: np.ndarray
    #: absolute stream positions, shape ``(rows,)``
    positions: np.ndarray
    #: the shared automaton's state count (bit width of each row)
    num_states: int
    #: reports recorded per row across batch steps, shape ``(rows,)``
    reports_recorded: np.ndarray

    @property
    def num_rows(self) -> int:
        return int(self.active_words.shape[0])

    @classmethod
    def attach(
        cls, states: "list[EngineState]", num_states: int
    ) -> "BatchEngineState":
        """Stack per-stream states into one SoA batch (lossless)."""
        from repro.sim.backends import bitwords

        return cls(
            active_words=bitwords.pack_rows(
                [s.active for s in states], num_states
            ),
            positions=np.fromiter(
                (s.position for s in states),
                dtype=np.int64,
                count=len(states),
            ),
            num_states=num_states,
            reports_recorded=np.zeros(len(states), dtype=np.int64),
        )

    def detach(self) -> "list[EngineState]":
        """Fresh per-stream :class:`EngineState`\\ s, one per row."""
        from repro.sim.backends import bitwords

        return [
            EngineState(active=active, position=int(position))
            for active, position in zip(
                bitwords.unpack_rows(self.active_words, self.num_states),
                self.positions,
            )
        ]

    def detach_into(self, states: "list[EngineState]") -> None:
        """Write the rows back into existing states, in place.

        The round-trip half of :meth:`attach`: callers that own
        long-lived :class:`EngineState` objects (sessions, snapshots)
        get them advanced without identity changes.
        """
        if len(states) != self.num_rows:
            raise SimulationError(
                f"batch has {self.num_rows} rows, cannot detach into "
                f"{len(states)} states"
            )
        for state, fresh in zip(states, self.detach()):
            state.active = fresh.active
            state.position = fresh.position

    def row_state(self, row: int) -> EngineState:
        """One row as a standalone :class:`EngineState` (a copy)."""
        from repro.sim.backends import bitwords

        return EngineState(
            active=bitwords.unpack_indices(self.active_words[row]),
            position=int(self.positions[row]),
        )

    def copy(self) -> "BatchEngineState":
        return BatchEngineState(
            active_words=self.active_words.copy(),
            positions=self.positions.copy(),
            num_states=self.num_states,
            reports_recorded=self.reports_recorded.copy(),
        )


def normalize_batch_caps(max_reports, num_rows: int) -> list[int]:
    """Per-row kept-reports budgets from an int-or-sequence argument."""
    if isinstance(max_reports, int):
        caps = [max_reports] * num_rows
    else:
        caps = [int(cap) for cap in max_reports]
        if len(caps) != num_rows:
            raise SimulationError(
                f"got {len(caps)} report budgets for {num_rows} batch rows"
            )
    if any(cap < 0 for cap in caps):
        raise SimulationError("report budgets must be >= 0")
    return caps


@dataclass
class SimulationResult:
    """Reports plus activity statistics of one run (or one chunk).

    ``truncated`` is True when at least one report was *counted* but not
    *recorded* because the ``max_reports`` cap was reached; the engine
    facade turns that into a :class:`ReportTruncationWarning` or
    :class:`~repro.errors.SimulationError` when the cap was implicit.
    """

    reports: list[Report]
    stats: TraceStats
    truncated: bool = False

    @property
    def num_reports(self) -> int:
        return self.stats.num_reports


#: what a kernel's ``run_chunk`` returns — one chunk's worth of results
StepResult = SimulationResult


# -- successor CSR (+ fingerprint-keyed cache) ----------------------------


def successor_csr(automaton, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Flatten per-state successor sets into a CSR pair.

    ``automaton`` is anything with a ``successors(state)`` method over
    dense ids ``0..n-1``.  Returns ``(offsets, targets)`` with
    ``targets[offsets[s]:offsets[s+1]]`` holding state ``s``'s
    successors in ascending order.
    """
    offsets = np.zeros(n + 1, dtype=np.int64)
    flat: list[int] = []
    for s in range(n):
        succ = sorted(automaton.successors(s))
        offsets[s + 1] = offsets[s] + len(succ)
        flat.extend(succ)
    targets = np.asarray(flat, dtype=np.int64)
    return offsets, targets


_CSR_CACHE_CAPACITY = 128
_CSR_CACHE: OrderedDict[tuple[str, str], tuple[np.ndarray, np.ndarray]] = (
    OrderedDict()
)


def cached_successor_csr(automaton) -> tuple[np.ndarray, np.ndarray]:
    """The successor CSR of ``automaton``, shared across compilations.

    Keyed by the automaton's structural fingerprint (transitions only),
    so distinct-but-identical rulesets — e.g. the same rules re-loaded
    for a second scan — share one CSR instead of rebuilding it in every
    engine constructor.  The returned arrays are shared and must be
    treated as read-only.  Falls back to a direct build for automata
    without a ``structure_fingerprint`` method.
    """
    fingerprint = getattr(automaton, "structure_fingerprint", None)
    n = len(automaton)
    if fingerprint is None:
        return successor_csr(automaton, n)
    key = (type(automaton).__qualname__, fingerprint())
    cached = _CSR_CACHE.get(key)
    if cached is not None:
        _CSR_CACHE.move_to_end(key)
        return cached
    built = successor_csr(automaton, n)
    _CSR_CACHE[key] = built
    if len(_CSR_CACHE) > _CSR_CACHE_CAPACITY:
        _CSR_CACHE.popitem(last=False)
    return built


def clear_csr_cache() -> None:
    """Drop every cached CSR (test isolation hook)."""
    _CSR_CACHE.clear()


def gather_successors(
    offsets: np.ndarray, targets: np.ndarray, active: np.ndarray
) -> np.ndarray:
    """Successors of every state in ``active``, gathered without a
    per-state Python loop (and without concatenating per-state slices).

    Builds one flat index vector into ``targets`` by expanding each
    active state's CSR span with ``np.repeat`` arithmetic.
    """
    if not active.size:
        return _EMPTY_IDS
    starts = offsets[active]
    counts = offsets[active + 1] - starts
    total = int(counts.sum())
    if not total:
        return _EMPTY_IDS
    # index = start(s) + (position within s's span), vectorized:
    # repeat each span's start, subtract the exclusive running total so
    # np.arange restarts at 0 at every span boundary.
    cum = np.cumsum(counts)
    index = np.arange(total, dtype=np.int64) + np.repeat(starts - (cum - counts), counts)
    return targets[index]


# -- per-automaton structure shared by every kernel -----------------------


def start_ids(automaton) -> tuple[np.ndarray, np.ndarray]:
    """(all-input ids, start-of-data ids) of any homogeneous automaton."""
    start_all = np.fromiter(
        (s.ste_id for s in automaton.states if s.start is StartKind.ALL_INPUT),
        dtype=np.int64,
    )
    start_sod = np.fromiter(
        (s.ste_id for s in automaton.states if s.start is StartKind.START_OF_DATA),
        dtype=np.int64,
    )
    return start_all, start_sod


def reporting_mask(automaton) -> np.ndarray:
    """Boolean vector marking the reporting states."""
    mask = np.zeros(len(automaton), dtype=bool)
    for ste in automaton.states:
        if ste.reporting:
            mask[ste.ste_id] = True
    return mask


def match_table(automaton) -> np.ndarray:
    """``table[symbol]`` is the boolean vector of states accepting it.

    This is exactly the bit-vector representation of CA/Impala; the
    sparse kernel indexes it directly and the bit-parallel kernel packs
    its rows into uint64 words.
    """
    table = np.zeros((256, len(automaton)), dtype=bool)
    for ste in automaton.states:
        for symbol in ste.symbol_class:
            table[symbol, ste.ste_id] = True
    return table


@dataclass
class KernelTables:
    """Precomputed per-automaton structures a kernel can be built from.

    This is the interchange form behind serialized compiled artifacts
    (:mod:`repro.compile.artifact`): every array a kernel constructor
    would otherwise derive from the automaton by Python loops, in a
    backend-neutral layout (the match table is packed uint64 words —
    the bit-parallel kernel uses it directly, the sparse kernel unpacks
    it in one vectorized ``np.unpackbits``).  Building a kernel from
    tables skips ``automaton.validate()`` too: validation happened at
    compile time and the tables are trusted compile output.
    """

    #: packed per-symbol acceptance masks, shape (256, num_words(n))
    match_words: np.ndarray
    #: successor CSR
    succ_offsets: np.ndarray
    succ_targets: np.ndarray
    #: start-state ids by kind
    start_all: np.ndarray
    start_sod: np.ndarray
    #: boolean reporting-state vector, shape (n,)
    reporting: np.ndarray
    #: per-state report codes (None for non-reporting states)
    report_codes: list
    #: optional packed per-state successor rows, shape (n, num_words(n))
    #: — exported by the packed-bitmap kernels so artifact warm loads
    #: skip the per-state Python derivation loop; None when the
    #: producing kernel never built them (e.g. sparse)
    succ_words: "np.ndarray | None" = None

    @classmethod
    def from_automaton(cls, automaton) -> "KernelTables":
        from repro.sim.backends import bitwords

        offsets, targets = cached_successor_csr(automaton)
        start_all, start_sod = start_ids(automaton)
        return cls(
            match_words=np.stack(
                [bitwords.pack_bool(row) for row in match_table(automaton)]
            ),
            succ_offsets=offsets,
            succ_targets=targets,
            start_all=start_all,
            start_sod=start_sod,
            reporting=reporting_mask(automaton),
            report_codes=[s.report_code for s in automaton.states],
        )

    def match_bool(self, n: int) -> np.ndarray:
        """The (256, n) boolean match table, unpacked from the words."""
        bits = np.unpackbits(
            self.match_words.view(np.uint8), axis=1, bitorder="little"
        )
        return bits[:, :n].astype(bool)

    @classmethod
    def concat(
        cls, tables: "list[KernelTables]", sizes: list[int]
    ) -> "KernelTables":
        """Block-diagonal merge of per-component tables.

        Transitions never cross connected components, so the tables of a
        merged automaton are exactly the block-diagonal composition of
        the per-component tables with state ids shifted by the running
        offset.  This is what lets the incremental compiler rebuild a
        shard engine from cached component artifacts without re-deriving
        anything from the merged automaton.

        ``sizes`` gives each block's state count (the packed-word arrays
        alone do not reveal it).  ``succ_words`` is carried over only
        when every block has it; a single sparse-produced block degrades
        the merged tables to CSR-only, which every kernel can rebuild
        from.
        """
        from repro.sim.backends import bitwords

        if not tables or len(tables) != len(sizes):
            raise SimulationError("concat needs one size per table block")
        if len(tables) == 1:
            return tables[0]
        n = sum(sizes)
        words = bitwords.num_words(n)
        match_bool = np.zeros((256, words * 64), dtype=np.uint8)
        offsets = np.zeros(n + 1, dtype=np.int64)
        targets_parts: list[np.ndarray] = []
        start_all_parts: list[np.ndarray] = []
        start_sod_parts: list[np.ndarray] = []
        reporting = np.zeros(n, dtype=bool)
        report_codes: list = []
        have_succ_words = all(t.succ_words is not None for t in tables)
        succ_bool = (
            np.zeros((n, words * 64), dtype=np.uint8) if have_succ_words else None
        )
        pos = 0
        nnz = 0
        for block, size in zip(tables, sizes):
            block.check(size)
            match_bool[:, pos : pos + size] = block.match_bool(size)
            offsets[pos + 1 : pos + size + 1] = block.succ_offsets[1:] + nnz
            targets_parts.append(block.succ_targets.astype(np.int64) + pos)
            start_all_parts.append(block.start_all.astype(np.int64) + pos)
            start_sod_parts.append(block.start_sod.astype(np.int64) + pos)
            reporting[pos : pos + size] = block.reporting
            report_codes.extend(block.report_codes)
            if succ_bool is not None:
                rows = np.unpackbits(
                    block.succ_words.view(np.uint8), axis=1, bitorder="little"
                )
                succ_bool[pos : pos + size, pos : pos + size] = rows[:, :size]
            nnz += int(block.succ_offsets[-1])
            pos += size
        return cls(
            match_words=np.packbits(
                match_bool, axis=1, bitorder="little"
            ).view(np.uint64),
            succ_offsets=offsets,
            succ_targets=(
                np.concatenate(targets_parts)
                if targets_parts
                else np.empty(0, dtype=np.int64)
            ),
            start_all=np.concatenate(start_all_parts),
            start_sod=np.concatenate(start_sod_parts),
            reporting=reporting,
            report_codes=report_codes,
            succ_words=(
                np.packbits(succ_bool, axis=1, bitorder="little").view(np.uint64)
                if succ_bool is not None
                else None
            ),
        )

    def check(self, n: int) -> "KernelTables":
        """Cheap structural consistency check against a state count."""
        from repro.sim.backends import bitwords

        if (
            self.match_words.shape != (256, bitwords.num_words(n))
            or self.succ_offsets.shape != (n + 1,)
            or self.reporting.shape != (n,)
            or len(self.report_codes) != n
            or (
                self.succ_words is not None
                and self.succ_words.shape != (n, bitwords.num_words(n))
            )
        ):
            raise SimulationError(
                f"kernel tables do not match an automaton of {n} states"
            )
        return self


def append_reports(
    reports: list[Report],
    firing: np.ndarray,
    cycle: int,
    report_codes: list[str | None],
    max_reports: int,
) -> bool:
    """Record ``firing`` states' reports up to ``max_reports`` total.

    Returns True when at least one report was dropped — the cap is
    exact even under simultaneous firings (never overshoots by the
    cycle's remainder).
    """
    truncated = False
    for s in firing:
        if len(reports) >= max_reports:
            truncated = True
            break
        reports.append(
            Report(cycle=cycle, state_id=int(s), code=report_codes[int(s)])
        )
    return truncated


class PlacementTracker:
    """Accumulates partition-resolved activity into a :class:`TraceStats`.

    One tracker serves both the sparse and bit-parallel kernels (they
    hand it enabled/active *index* arrays each cycle) so the energy
    models see identical statistics regardless of backend.  Pass the
    successor CSR to also track cross-partition (global-switch)
    traffic; the strided engine omits it.
    """

    def __init__(
        self,
        placement: PartitionAssignment,
        stats: TraceStats,
        n: int,
        succ: tuple[np.ndarray, np.ndarray] | None = None,
        what: str = "automaton",
    ) -> None:
        if len(placement.partition_of) != n:
            raise SimulationError(f"placement size does not match {what} size")
        self.part = np.asarray(placement.partition_of, dtype=np.int64)
        self.weights = (
            np.asarray(placement.weights, dtype=np.float64)
            if placement.weights is not None
            else None
        )
        self.stats = stats
        stats.num_partitions = placement.num_partitions
        stats.partition_enabled_cycles = np.zeros(
            placement.num_partitions, dtype=np.int64
        )
        stats.partition_active_cycles = np.zeros(
            placement.num_partitions, dtype=np.int64
        )
        stats.partition_enabled_states_sum = np.zeros(
            placement.num_partitions, dtype=np.int64
        )
        stats.partition_enabled_weight_sum = np.zeros(
            placement.num_partitions, dtype=np.float64
        )
        stats.partition_active_states_sum = np.zeros(
            placement.num_partitions, dtype=np.int64
        )
        self.cross_any: np.ndarray | None = None
        if succ is not None:
            # cross_any[s] is True when s has a successor in another partition
            offsets, targets = succ
            cross_any = np.zeros(n, dtype=bool)
            for s in range(n):
                out = targets[offsets[s] : offsets[s + 1]]
                if out.size and np.any(self.part[out] != self.part[s]):
                    cross_any[s] = True
            self.cross_any = cross_any

    def update(self, enabled: np.ndarray, active: np.ndarray) -> None:
        """Fold one cycle's enabled/active index sets into the stats."""
        stats = self.stats
        if enabled.size:
            counts = np.bincount(
                self.part[enabled], minlength=stats.num_partitions
            )
            stats.partition_enabled_cycles += counts > 0
            stats.partition_enabled_states_sum += counts
            if self.weights is None:
                stats.partition_enabled_weight_sum += counts
            else:
                stats.partition_enabled_weight_sum += np.bincount(
                    self.part[enabled],
                    weights=self.weights[enabled],
                    minlength=stats.num_partitions,
                )
        if active.size:
            acounts = np.bincount(
                self.part[active], minlength=stats.num_partitions
            )
            stats.partition_active_states_sum += acounts
            stats.partition_active_cycles += acounts > 0
            if self.cross_any is not None:
                crossing = active[self.cross_any[active]]
                stats.global_crossing_states_sum += int(crossing.size)
                if crossing.size:
                    stats.global_source_partitions_sum += int(
                        np.unique(self.part[crossing]).size
                    )


# -- the backend contract -------------------------------------------------


class CompiledKernel(ABC):
    """One automaton compiled for execution by a specific backend.

    Kernels are stateless with respect to streams: all stream state
    lives in the :class:`EngineState` the caller threads through
    :meth:`run_chunk`, so one kernel serves any number of concurrent
    sessions.
    """

    #: resolved backend name ("sparse" / "bitparallel"), set per kernel
    name: str

    def __init__(self, automaton) -> None:
        self.automaton = automaton

    def initial_state(self) -> EngineState:
        """A fresh :class:`EngineState` at stream position 0."""
        return EngineState()

    @abstractmethod
    def run_chunk(
        self,
        data: bytes,
        state: EngineState,
        *,
        placement: PartitionAssignment | None = None,
        keep_per_cycle: bool = False,
        max_reports: int = DEFAULT_MAX_KEPT_REPORTS,
    ) -> StepResult:
        """Consume one chunk of a stream, advancing ``state`` in place.

        ``START_OF_DATA`` states are enabled only when ``state`` is at
        stream position 0 and report cycles are absolute stream offsets
        — chunked execution is exactly equivalent to one-shot execution
        for every backend (the cross-backend property tests assert
        this).
        """

    def run(
        self,
        data: bytes,
        *,
        placement: PartitionAssignment | None = None,
        keep_per_cycle: bool = False,
        max_reports: int = DEFAULT_MAX_KEPT_REPORTS,
    ) -> StepResult:
        """One-shot execution: :meth:`run_chunk` from a fresh state."""
        return self.run_chunk(
            data,
            self.initial_state(),
            placement=placement,
            keep_per_cycle=keep_per_cycle,
            max_reports=max_reports,
        )

    def initial_batch(self, num_rows: int) -> BatchEngineState:
        """A fresh :class:`BatchEngineState` of ``num_rows`` streams."""
        return BatchEngineState.attach(
            [self.initial_state() for _ in range(num_rows)],
            len(self.automaton),
        )

    def step_batch(
        self,
        chunks: "list[bytes]",
        batch: BatchEngineState,
        *,
        max_reports=DEFAULT_MAX_KEPT_REPORTS,
    ) -> "list[StepResult]":
        """Consume one chunk per stream row, advancing ``batch`` in place.

        Row ``r`` of ``batch`` consumes ``chunks[r]`` with exactly the
        semantics of :meth:`run_chunk` on that row's detached
        :class:`EngineState` — same reports (absolute cycles, tagged to
        their row by list position), same stats, same final state; the
        oracle-differential batch property tests assert byte equality.
        ``max_reports`` is one shared cap or a per-row budget sequence.

        This base implementation is the correct per-row loop (the
        sparse backend's batch path); vectorized kernels override it
        with a single 2-D pass over all rows.
        """
        if len(chunks) != batch.num_rows:
            raise SimulationError(
                f"got {len(chunks)} chunks for {batch.num_rows} batch rows"
            )
        caps = normalize_batch_caps(max_reports, batch.num_rows)
        states = batch.detach()
        results = [
            self.run_chunk(bytes(chunk), state, max_reports=cap)
            for chunk, state, cap in zip(chunks, states, caps)
        ]
        from repro.sim.backends import bitwords

        batch.active_words = bitwords.pack_rows(
            [s.active for s in states], batch.num_states
        )
        for row, (state, result) in enumerate(zip(states, results)):
            batch.positions[row] = state.position
            batch.reports_recorded[row] += len(result.reports)
        return results


@runtime_checkable
class ExecutionBackend(Protocol):
    """Compiles automata into kernels; the unit of execution pluggability.

    Implementations are stateless and cheap to construct; the expensive
    artifact is the :class:`CompiledKernel`, which the service layer
    caches by ruleset fingerprint.
    """

    #: registry name ("sparse", "bitparallel", "auto", ...)
    name: str

    def compile(self, automaton) -> CompiledKernel:
        """Compile ``automaton`` into an executable kernel."""
        ...
