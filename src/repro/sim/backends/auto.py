"""The ``auto`` policy: pick sparse or bit-parallel per automaton.

The sparse kernel wins when few states are active per cycle (its cost
follows the active set); the bit-parallel kernel wins when many are
(its cost follows ``n/64`` words, sort-free).  This is the software
face of the same density trade-off CAMA-E's selective precharge
exploits in hardware: energy/work should follow *actual* activity, not
capacity.  The policy decides per *automaton* — which under the sharded
dispatcher means per shard, so one ruleset can mix backends — using

* the state count (very large automata exceed the packed successor
  matrix budget: sparse);
* the expected active fraction from
  :func:`repro.automata.analysis.estimate_active_fraction` (or a
  measured fraction when the caller has one from a probe run) — the
  measured crossover sits around a 2% active fraction (see the
  ``test_backend_crossover`` micro-benchmark), and the threshold here
  is deliberately above it, so borderline automata keep the
  well-understood sparse kernel.
"""

from __future__ import annotations

from repro.automata.analysis import estimate_active_fraction
from repro.sim.backends.base import CompiledKernel
from repro.sim.backends.bitparallel import MAX_BITPARALLEL_STATES
from repro.sim.backends.sparse import SparseBackend
from repro.telemetry.metrics import default_registry

#: expected active fraction above which the packed kernel wins
DENSE_ACTIVITY_THRESHOLD = 0.05

_AUTO_CHOICES = default_registry().counter(
    "repro_backend_auto_choices_total",
    "Resolutions of the auto backend policy, by chosen kernel",
    ("choice",),
)


def choose_backend_name(
    automaton,
    *,
    active_fraction: float | None = None,
) -> str:
    """Resolve the ``auto`` policy to ``"sparse"`` or ``"bitparallel"``.

    The result names the kernel *family* (representation choice), not
    the implementation: :class:`AutoBackend` compiles the dense family
    through the native C loop whenever it is loadable on this host.

    ``active_fraction`` overrides the static estimate with a measured
    per-cycle active fraction (``TraceStats.avg_active_states() / n``
    from a probe run) when the caller has one.
    """
    if len(automaton) > MAX_BITPARALLEL_STATES:
        choice = "sparse"
    else:
        if active_fraction is None:
            active_fraction = estimate_active_fraction(automaton)
        choice = (
            "bitparallel"
            if active_fraction >= DENSE_ACTIVITY_THRESHOLD
            else "sparse"
        )
    _AUTO_CHOICES.labels(choice).inc()
    return choice


class AutoBackend:
    """Backend that defers to :func:`choose_backend_name` per automaton.

    The compiled kernel's ``name`` records the resolved choice, so
    callers (and tests) can observe which kernel an automaton got.
    """

    name = "auto"

    def __init__(self, *, active_fraction: float | None = None) -> None:
        self.active_fraction = active_fraction

    def compile(self, automaton) -> CompiledKernel:
        choice = choose_backend_name(
            automaton, active_fraction=self.active_fraction
        )
        if choice == "bitparallel":
            # dense family: the compiled C loop when loadable on this
            # host, the pure-numpy kernel otherwise
            from repro.sim.backends.native import dense_backend

            return dense_backend().compile(automaton)
        return SparseBackend().compile(automaton)
