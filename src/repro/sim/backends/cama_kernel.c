/* cama_kernel.c — the bit-parallel automata step loop, in C.
 *
 * This is the native half of `repro.sim.backends.native`: the exact
 * packed-uint64 semantics of the pure-numpy BitParallelKernel
 * (per-symbol match masks, successor-row OR-reduce, report
 * extraction), with the per-cycle Python/numpy dispatch overhead
 * removed.  The Python side owns all memory: every pointer passed in
 * is a C-contiguous numpy array, and the function is pure compute —
 * no allocation, no globals, no Python API — so ctypes can call it
 * with the GIL released and rows of a batch can be stepped from the
 * same tables concurrently.
 *
 * The file compiles two ways:
 *
 *   - at install time by setup.py as the extension module
 *     `repro.sim.backends._cama_native` (CAMA_BUILD_PYEXT defined; a
 *     stub PyInit_ is appended so setuptools can build it — the
 *     symbol below is still read via ctypes.CDLL on the .so, never
 *     through Python imports);
 *
 *   - at runtime by `cc -O3 -shared -fPIC` into a per-user cache when
 *     the package was never installed with a compiler at hand.  This
 *     path deliberately needs no Python headers.
 *
 * Report-buffer contract (resumability): the caller hands a bounded
 * (cycle, state) scratch buffer.  Before every cycle the loop checks
 * that a worst-case report burst — every reporting state firing at
 * once, `nrep_total` — still fits; if not it returns early with the
 * next unconsumed offset so Python can drain the buffer and resume.
 * A capacity >= nrep_total therefore guarantees forward progress.
 */

#include <stdint.h>
#include <string.h>

#if defined(__GNUC__) || defined(__clang__)
#define CAMA_POPCOUNT64(x) ((int64_t)__builtin_popcountll(x))
#define CAMA_CTZ64(x) ((int64_t)__builtin_ctzll(x))
#else
static int64_t cama_popcount_soft(uint64_t x) {
    int64_t count = 0;
    while (x) {
        x &= x - 1;
        count++;
    }
    return count;
}
static int64_t cama_ctz_soft(uint64_t x) {
    int64_t idx = 0;
    while (!(x & 1u)) {
        x >>= 1;
        idx++;
    }
    return idx;
}
#define CAMA_POPCOUNT64(x) cama_popcount_soft(x)
#define CAMA_CTZ64(x) cama_ctz_soft(x)
#endif

/* counters layout (zeroed by the caller before each call) */
enum {
    CAMA_CTR_ENABLED_SUM = 0, /* sum of enabled-state counts per cycle   */
    CAMA_CTR_ACTIVE_SUM = 1,  /* sum of active-state counts per cycle    */
    CAMA_CTR_FIRED = 2,       /* reports fired (recorded or not)         */
    CAMA_CTR_RECORDED = 3,    /* reports written to rep_cycles/rep_states */
    CAMA_CTR_TRUNCATED = 4,   /* 1 if any firing report exceeded budget  */
    CAMA_CTR_COUNT = 5
};

/* Step `active` through data[start_offset..length); returns the next
 * unconsumed offset (== length when the chunk completed, less when the
 * loop paused to let the caller drain the report buffer).
 *
 *   match_words  (256, words)  per-symbol match masks
 *   succ_rows    (n, words)    successor bitmap per state
 *   start_all / start_first / reporting   (words,) masks
 *   words        words per bitmap row
 *   nrep_total   popcount(reporting): worst-case reports in one cycle
 *   data         input symbols, `length` of them
 *   base_cycle   absolute cycle of data[0] (start_first applies only
 *                at absolute cycle 0); report cycles are absolute
 *   active       (words,) in/out current active bitmap
 *   scratch      (words,) caller-provided enabled-bitmap workspace
 *   budget       max reports still recordable (beyond it: counted,
 *                truncated flag set, nothing written)
 *   rep_cycles / rep_states  (rep_capacity,) report output buffer
 *   counters     (CAMA_CTR_COUNT,) statistics, zeroed by the caller
 */
int64_t cama_run_chunk(
    const uint64_t *match_words,
    const uint64_t *succ_rows,
    const uint64_t *start_all,
    const uint64_t *start_first,
    const uint64_t *reporting,
    int64_t words,
    int64_t nrep_total,
    const uint8_t *data,
    int64_t length,
    int64_t start_offset,
    int64_t base_cycle,
    uint64_t *active,
    uint64_t *scratch,
    int64_t budget,
    int64_t *rep_cycles,
    int64_t *rep_states,
    int64_t rep_capacity,
    int64_t *counters)
{
    int64_t off;
    for (off = start_offset; off < length; off++) {
        int64_t budget_left = budget - counters[CAMA_CTR_RECORDED];
        int64_t worst = nrep_total < budget_left ? nrep_total : budget_left;
        if (rep_capacity - counters[CAMA_CTR_RECORDED] < worst) {
            return off; /* pause: caller drains the report buffer */
        }

        /* enabled = OR(succ_rows[s] for s in active) | starts */
        const uint64_t *starts =
            (base_cycle + off == 0) ? start_first : start_all;
        memcpy(scratch, starts, (size_t)words * sizeof(uint64_t));
        for (int64_t w = 0; w < words; w++) {
            uint64_t bits = active[w];
            while (bits) {
                int64_t state = w * 64 + CAMA_CTZ64(bits);
                const uint64_t *row = succ_rows + state * words;
                for (int64_t t = 0; t < words; t++) {
                    scratch[t] |= row[t];
                }
                bits &= bits - 1;
            }
        }

        /* active = enabled & match_words[symbol]; accumulate stats */
        const uint64_t *match = match_words + (int64_t)data[off] * words;
        int64_t enabled_count = 0;
        int64_t active_count = 0;
        uint64_t any_reporting = 0;
        for (int64_t w = 0; w < words; w++) {
            uint64_t enabled = scratch[w];
            uint64_t next = enabled & match[w];
            enabled_count += CAMA_POPCOUNT64(enabled);
            active_count += CAMA_POPCOUNT64(next);
            any_reporting |= next & reporting[w];
            active[w] = next;
        }
        counters[CAMA_CTR_ENABLED_SUM] += enabled_count;
        counters[CAMA_CTR_ACTIVE_SUM] += active_count;

        /* report extraction: firing bits in ascending state order */
        if (any_reporting) {
            int64_t cycle = base_cycle + off;
            for (int64_t w = 0; w < words; w++) {
                uint64_t bits = active[w] & reporting[w];
                while (bits) {
                    int64_t state = w * 64 + CAMA_CTZ64(bits);
                    counters[CAMA_CTR_FIRED]++;
                    if (counters[CAMA_CTR_RECORDED] < budget) {
                        int64_t slot = counters[CAMA_CTR_RECORDED]++;
                        rep_cycles[slot] = cycle;
                        rep_states[slot] = state;
                    } else {
                        counters[CAMA_CTR_TRUNCATED] = 1;
                    }
                    bits &= bits - 1;
                }
            }
        }
    }
    return off;
}

#ifdef CAMA_BUILD_PYEXT
/* Minimal module shell so setuptools can build/install this file as
 * `repro.sim.backends._cama_native`.  Nothing imports it for its
 * Python surface — the loader resolves the shared object's path and
 * binds cama_run_chunk through ctypes. */
#include <Python.h>

static struct PyModuleDef cama_native_module = {
    PyModuleDef_HEAD_INIT,
    "_cama_native",
    "Carrier for the native CAMA step loop; symbols are bound via "
    "ctypes from the shared object, not through this module.",
    -1,
    NULL,
};

PyMODINIT_FUNC PyInit__cama_native(void) {
    return PyModule_Create(&cama_native_module);
}
#endif
