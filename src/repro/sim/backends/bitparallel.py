"""The vectorized bit-parallel backend: packed uint64 state bitmaps.

The state set is packed into ``ceil(n / 64)`` uint64 words and each
cycle becomes a handful of word-wide numpy operations:

    enabled_words = OR of successor rows of the active states | starts
    active_words  = enabled_words & match_words[symbol]

with the per-symbol match masks and per-state successor rows
precomputed at compile time — no concatenation, no sort, no
``np.unique``.  Per-cycle cost is ``O(active_states x words + n / 8)``
regardless of transition fan-out, which beats the sparse kernel as soon
as a meaningful fraction of states is active (dense workloads: many
all-input starts, wide character classes, adversarial inputs).  The
whole chunk's match masks are gathered in one fancy-index up front, so
the inner loop touches numpy only through AND/OR/popcount.

Semantics are bit-for-bit those of the sparse kernel (the cross-backend
property tests enforce identical reports, stats and final states);
:class:`EngineState` stays in index form, converted at chunk
boundaries, so streams migrate freely between backends.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sim.backends import bitwords
from repro.sim.backends.base import (
    DEFAULT_MAX_KEPT_REPORTS,
    BatchEngineState,
    CompiledKernel,
    EngineState,
    KernelTables,
    PlacementTracker,
    StepResult,
    append_reports,
    cached_successor_csr,
    match_table,
    normalize_batch_caps,
    reporting_mask,
    start_ids,
)
from repro.sim.reports import Report
from repro.sim.trace import PartitionAssignment, TraceStats

#: beyond this many states the per-state successor rows (n^2/8 bytes)
#: stop being worth their memory; the auto policy falls back to sparse
MAX_BITPARALLEL_STATES = 1 << 14

#: cap (in uint64 words, ~8 MB) on the pre-gathered per-symbol match
#: masks, so a large chunk against a wide automaton doesn't allocate
#: chunk_len x n/8 bytes at once
_MATCH_GATHER_WORDS = 1 << 20


class BitParallelKernel(CompiledKernel):
    """Compiled bit-parallel simulator for one :class:`Automaton`."""

    name = "bitparallel"

    def __init__(self, automaton, *, tables: KernelTables | None = None) -> None:
        if tables is None:
            automaton.validate()
        super().__init__(automaton)
        n = len(automaton)
        if n > MAX_BITPARALLEL_STATES:
            # fail fast: beyond this the successor matrix alone is
            # n^2/8 bytes, built by a per-state loop — an explicit
            # backend choice should error clearly, not OOM
            raise SimulationError(
                f"automaton has {n} states, above the bit-parallel "
                f"limit of {MAX_BITPARALLEL_STATES} (the packed "
                f"successor matrix would need ~{n * n // 8 / 1e6:.0f} "
                f"MB); use the 'sparse' or 'auto' backend"
            )
        self._n = n
        self._num_words = bitwords.num_words(n)
        if tables is None:
            # match_words[symbol] is the packed vector of states accepting it
            self._match_words = np.stack(
                [bitwords.pack_bool(row) for row in match_table(automaton)]
            )
            self._succ_offsets, self._succ_targets = cached_successor_csr(
                automaton
            )
            start_all, start_sod = start_ids(automaton)
            self._reporting = reporting_mask(automaton)
            self._report_codes = [s.report_code for s in automaton.states]
        else:
            # prebuilt tables (a loaded artifact): the packed match
            # words are this kernel's native layout, used as-is
            tables.check(n)
            self._match_words = tables.match_words
            self._succ_offsets = tables.succ_offsets
            self._succ_targets = tables.succ_targets
            start_all, start_sod = tables.start_all, tables.start_sod
            self._reporting = tables.reporting
            self._report_codes = list(tables.report_codes)
        if tables is not None and tables.succ_words is not None:
            # artifact warm path: the packed successor matrix was
            # exported at compile time, skip the per-state build loop
            self._succ_rows = np.ascontiguousarray(
                tables.succ_words, dtype=np.uint64
            )
        else:
            self._succ_rows = bitwords.successor_rows(
                self._succ_offsets, self._succ_targets, n
            )
        self._start_all_words = bitwords.pack_indices(start_all, n)
        self._start_first_words = self._start_all_words | bitwords.pack_indices(
            start_sod, n
        )
        self._start_all = start_all
        self._start_sod = start_sod
        self._reporting_words = bitwords.pack_bool(self._reporting)

    def export_tables(self) -> KernelTables:
        """This kernel's structures in the serializable interchange form."""
        return KernelTables(
            match_words=self._match_words,
            succ_offsets=self._succ_offsets,
            succ_targets=self._succ_targets,
            start_all=self._start_all,
            start_sod=self._start_sod,
            reporting=self._reporting,
            report_codes=list(self._report_codes),
            succ_words=self._succ_rows,
        )

    # -- single-step API (parity with the sparse kernel) -----------------
    def enabled_at(self, active: np.ndarray, first_cycle: bool) -> np.ndarray:
        """Indices of states enabled next cycle, given active indices."""
        words = np.empty(self._num_words, dtype=np.uint64)
        bitwords.or_reduce_rows(
            self._succ_rows, np.asarray(active, dtype=np.int64), words
        )
        words |= self._start_first_words if first_cycle else self._start_all_words
        return bitwords.unpack_indices(words)

    def match(self, enabled: np.ndarray, symbol: int) -> np.ndarray:
        """Subset of ``enabled`` whose class contains ``symbol``."""
        if not 0 <= symbol < 256:
            raise SimulationError(f"input symbol out of range: {symbol}")
        if not len(enabled):
            return np.asarray(enabled, dtype=np.int64)
        enabled = np.asarray(enabled, dtype=np.int64)
        words = self._match_words[symbol]
        hit = (words[enabled >> 6] >> (enabled & 63).astype(np.uint64)) & np.uint64(1)
        return enabled[hit.astype(bool)]

    def run_chunk(
        self,
        data: bytes,
        state: EngineState,
        *,
        placement: PartitionAssignment | None = None,
        keep_per_cycle: bool = False,
        max_reports: int = DEFAULT_MAX_KEPT_REPORTS,
    ) -> StepResult:
        stats = TraceStats(num_states=self._n)
        tracker = None
        if placement is not None:
            tracker = PlacementTracker(
                placement,
                stats,
                self._n,
                succ=(self._succ_offsets, self._succ_targets),
            )

        reports: list[Report] = []
        truncated = False
        base = state.position
        active_ids = np.asarray(state.active, dtype=np.int64)
        if len(data):
            symbols = np.frombuffer(data, dtype=np.uint8)
            # pre-gather the packed match mask of every symbol, in
            # bounded blocks: row i of a block is the mask of that
            # block's i-th symbol
            block = max(1, _MATCH_GATHER_WORDS // self._num_words)
            block_start = 0
            chunk_match = self._match_words[symbols[:block]]
            enabled_words = np.empty(self._num_words, dtype=np.uint64)
            rows = self._succ_rows
            for offset in range(len(data)):
                if offset - block_start >= block:
                    block_start = offset
                    chunk_match = self._match_words[
                        symbols[offset : offset + block]
                    ]
                cycle = base + offset
                bitwords.or_reduce_rows(rows, active_ids, enabled_words)
                enabled_words |= (
                    self._start_first_words if cycle == 0 else self._start_all_words
                )
                active_words = enabled_words & chunk_match[offset - block_start]
                active_ids = bitwords.unpack_indices(active_words)

                stats.num_cycles += 1
                enabled_count = bitwords.popcount(enabled_words)
                stats.enabled_states_sum += enabled_count
                stats.active_states_sum += int(active_ids.size)
                if keep_per_cycle:
                    stats.enabled_per_cycle.append(enabled_count)
                    stats.active_per_cycle.append(int(active_ids.size))
                if tracker is not None:
                    tracker.update(
                        bitwords.unpack_indices(enabled_words), active_ids
                    )

                if active_words.any() and (
                    active_words & self._reporting_words
                ).any():
                    firing = active_ids[self._reporting[active_ids]]
                    stats.num_reports += int(firing.size)
                    truncated |= append_reports(
                        reports, firing, cycle, self._report_codes, max_reports
                    )
        state.active = active_ids
        state.position = base + len(data)
        return StepResult(reports=reports, stats=stats, truncated=truncated)

    # -- batched multi-stream execution ----------------------------------
    def step_batch(
        self,
        chunks: list[bytes],
        batch: BatchEngineState,
        *,
        max_reports=DEFAULT_MAX_KEPT_REPORTS,
    ) -> list[StepResult]:
        """Advance every stream row one chunk in a single 2-D pass.

        The software CAMA array step: per cycle, all rows' enable/match
        happen as whole-matrix uint64 operations —

        * the (row, state) pairs of all active bits come from one
          ``np.nonzero`` over the unpacked matrix;
        * successor rows are OR-folded per stream row with one
          ``np.bitwise_or.reduceat`` segment reduction;
        * the match step is one fancy-index into the per-symbol masks
          and one matrix AND —

        so per-cycle Python overhead is constant in the number of rows,
        instead of the per-stream loop's ``O(rows)`` interpreter work.
        Rows are processed in descending chunk-length order so the live
        rows of any cycle form a contiguous matrix prefix; shorter rows
        simply stop being touched once their chunk is consumed.
        Semantics per row are exactly :meth:`run_chunk`'s.
        """
        num_rows = batch.num_rows
        if len(chunks) != num_rows:
            raise SimulationError(
                f"got {len(chunks)} chunks for {num_rows} batch rows"
            )
        caps = normalize_batch_caps(max_reports, num_rows)
        lens = np.fromiter(
            (len(c) for c in chunks), dtype=np.int64, count=num_rows
        )
        # live-prefix ordering: longest chunks first (stable, so equal
        # lengths keep their relative order)
        order = np.argsort(-lens, kind="stable")
        inverse = np.empty(num_rows, dtype=np.int64)
        inverse[order] = np.arange(num_rows, dtype=np.int64)
        sorted_lens = lens[order]
        longest = int(sorted_lens[0]) if num_rows else 0

        words = batch.active_words[order]  # fancy index: a fresh matrix
        positions = batch.positions[order].copy()
        sorted_caps = [caps[int(row)] for row in order]

        symbols = np.zeros((num_rows, longest), dtype=np.uint8)
        for i, row in enumerate(order):
            chunk = chunks[int(row)]
            if len(chunk):
                symbols[i, : len(chunk)] = np.frombuffer(chunk, dtype=np.uint8)

        n, num_words = self._n, self._num_words
        succ_rows = self._succ_rows
        match_words = self._match_words
        reporting = self._reporting
        # rows live at cycle t are those with chunk length >= t + 1
        live_counts = np.searchsorted(
            -sorted_lens, -(np.arange(longest, dtype=np.int64) + 1), side="right"
        )

        per_row_reports: list[list[Report]] = [[] for _ in range(num_rows)]
        truncated = np.zeros(num_rows, dtype=bool)
        enabled_sums = np.zeros(num_rows, dtype=np.int64)
        active_sums = np.zeros(num_rows, dtype=np.int64)
        report_counts = np.zeros(num_rows, dtype=np.int64)

        # the active set as (row, state) pairs, carried across cycles so
        # each cycle expands only its *new* active matrix (cost follows
        # the set words, not rows x states)
        row_idx, state_idx = bitwords.expand_rows(words)
        for t in range(longest):
            live = int(live_counts[t])
            if row_idx.size and int(row_idx[-1]) >= live:
                # rows past the live prefix just finished their chunks;
                # their pairs drop out, their words stay frozen
                keep = row_idx < live
                row_idx, state_idx = row_idx[keep], state_idx[keep]
            enabled = np.zeros((live, num_words), dtype=np.uint64)
            if state_idx.size:
                counts = np.bincount(row_idx, minlength=live)
                occupied = counts > 0
                starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
                enabled[occupied] = np.bitwise_or.reduceat(
                    succ_rows[state_idx], starts[occupied], axis=0
                )
            enabled |= self._start_all_words
            if t == 0:
                fresh = positions[:live] == 0
                if fresh.any():
                    enabled[fresh] |= self._start_first_words
            active = enabled & match_words[symbols[:live, t]]
            words[:live] = active
            row_idx, state_idx = bitwords.expand_rows(active)

            enabled_sums[:live] += bitwords.popcount_rows(enabled)
            if row_idx.size:
                active_sums[:live] += np.bincount(row_idx, minlength=live)
                firing_sel = reporting[state_idx]
                if firing_sel.any():
                    fire_rows = row_idx[firing_sel]
                    fire_states = state_idx[firing_sel]
                    # pairs are row-major, so per-row groups are slices
                    bounds = np.nonzero(np.diff(fire_rows))[0] + 1
                    group_rows = fire_rows[
                        np.concatenate(([0], bounds))
                    ]
                    for i, firing in zip(
                        group_rows, np.split(fire_states, bounds)
                    ):
                        i = int(i)
                        report_counts[i] += firing.size
                        truncated[i] |= append_reports(
                            per_row_reports[i],
                            firing,
                            int(positions[i]) + t,
                            self._report_codes,
                            sorted_caps[i],
                        )

        positions += sorted_lens
        batch.active_words = words[inverse]
        batch.positions = positions[inverse]

        results = []
        for row in range(num_rows):
            i = int(inverse[row])
            stats = TraceStats(num_states=n)
            stats.num_cycles = int(lens[row])
            stats.enabled_states_sum = int(enabled_sums[i])
            stats.active_states_sum = int(active_sums[i])
            stats.num_reports = int(report_counts[i])
            batch.reports_recorded[row] += len(per_row_reports[i])
            results.append(
                StepResult(
                    reports=per_row_reports[i],
                    stats=stats,
                    truncated=bool(truncated[i]),
                )
            )
        return results


class BitParallelBackend:
    """Backend producing :class:`BitParallelKernel`\\ s."""

    name = "bitparallel"

    def compile(self, automaton) -> BitParallelKernel:
        from repro.sim.backends.base import KERNEL_COMPILES

        KERNEL_COMPILES.labels(self.name).inc()
        return BitParallelKernel(automaton)

    def from_tables(
        self, automaton, tables: KernelTables
    ) -> BitParallelKernel:
        """Rebuild a kernel from prebuilt (artifact) tables."""
        return BitParallelKernel(automaton, tables=tables)
