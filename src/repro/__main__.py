"""Command-line interface: compile, run and evaluate automata on CAMA.

    python -m repro compile rules.anml            # compile + summary
    python -m repro compile rules.mnrl --optimize --timings
    python -m repro compile rules.regex --out rules.npz  # save artifact
    python -m repro compile rules.regex --incremental \
        --artifact-cache ~/.cache/repro --compile-workers 4
    python -m repro inspect rules.npz             # artifact manifest
    python -m repro run rules.anml input.bin      # reports to stdout
    python -m repro scan rules.anml input.bin \
        --chunk-size 65536 --shards 4 --workers 2 # streaming service scan
    python -m repro scan rules.anml input.bin \
        --artifact-cache ~/.cache/repro           # persistent compile cache
    python -m repro serve --port 8765 --shards 4  # network matching server
    python -m repro evaluate rules.anml input.bin # CAMA vs baselines
    python -m repro experiments --only table4     # paper tables/figures

Accepts ANML (.anml/.xml), MNRL (.mnrl/.json), or a newline-separated
regex list (.regex/.txt).  ``compile --out`` writes a serializable
compiled-ruleset artifact (:mod:`repro.compile.artifact`) that any
other process can load — or upload to a server — without recompiling.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.api.config import CompileConfig, ScanConfig
from repro.arch.designs import ALL_DESIGNS, build_design
from repro.automata.nfa import Automaton
from repro.errors import ReproError
from repro.sim.backends import BACKEND_NAMES, DEFAULT_MAX_KEPT_REPORTS
from repro.sim.engine import Engine
from repro.utils.tables import format_table


def load_automaton(path: str) -> Automaton:
    """Load an automaton from ANML, MNRL or a regex-list file."""
    from repro.compile import load_source

    return load_source(path)


# -- args -> typed configs (parsed once, consumed everywhere) --------------


def compile_config_from_args(args: argparse.Namespace) -> CompileConfig:
    """The ``compile`` subcommand's flags as one validated config."""
    return CompileConfig(
        optimize=args.optimize,
        stride=args.stride,
        backend=args.backend,
    )


def scan_config_from_args(args: argparse.Namespace) -> ScanConfig:
    """The service-shaped flags (``scan`` / ``serve``) as one validated
    config — the same :class:`ScanConfig` the library API takes, so the
    CLI cannot drift from it."""
    return ScanConfig(
        backend=args.backend,
        num_shards=args.shards,
        workers=args.workers,
        chunk_size=args.chunk_size,
        max_reports=args.max_kept_reports,
        on_truncation="error" if args.strict_reports else "warn",
        artifact_store=args.artifact_cache,
        hardware_ledger=getattr(args, "ledger", False),
        ledger_design=getattr(args, "ledger_design", "CAMA-E"),
        trace=getattr(args, "trace", False),
    )


def cmd_compile(args: argparse.Namespace) -> int:
    from repro.compile import CompiledArtifact, compile_ruleset

    if args.incremental:
        return cmd_compile_incremental(args)
    compiled = compile_ruleset(args.automaton, compile_config_from_args(args))
    if compiled.optimization is not None:
        report = compiled.optimization
        print(
            f"optimized: {report.states_before} -> {report.states_after} "
            f"states ({report.reduction:.0%} reduction)"
        )
    if compiled.program is not None:
        rows = [[key, value] for key, value in compiled.program.summary().items()]
        print(format_table(["property", "value"], rows))
    elif compiled.strided is not None:
        print(
            f"2-strided {compiled.automaton.name}: "
            f"{len(compiled.automaton)} -> {len(compiled.strided)} states, "
            f"kernel backend {compiled.kernel.backend_name}"
        )
    if args.timings:
        print(
            format_table(
                ["pass", "ms", "notes"],
                compiled.timing_rows(),
                title="pipeline pass timings",
            )
        )
    if args.out:
        artifact = CompiledArtifact.from_compiled(compiled)
        path = artifact.save(args.out)
        print(
            f"artifact: {path} ({path.stat().st_size} bytes, "
            f"key {artifact.key[:16]}...)"
        )
    return 0


def cmd_compile_incremental(args: argparse.Namespace) -> int:
    from repro.compile import IncrementalCompiler
    from repro.compile.store import ArtifactStore

    if args.out:
        raise ReproError(
            "--out writes a single monolithic artifact; an incremental "
            "compile stores per-component artifacts in --artifact-cache "
            "instead"
        )
    store = (
        ArtifactStore(args.artifact_cache) if args.artifact_cache else None
    )
    compiler = IncrementalCompiler(
        store=store, options=compile_config_from_args(args)
    )
    composed = compiler.compile(
        load_automaton(args.automaton), workers=args.compile_workers
    )
    rows = [
        ["states", len(composed.automaton)],
        ["components", len(composed.components)],
        ["reused", composed.reused_components],
        ["compiled", composed.compiled_components],
        ["ruleset key", composed.key[:16] + "..."],
        ["composition key", composed.composition_key[:16] + "..."],
    ]
    if composed.num_dropped_states:
        rows.insert(1, ["non-reporting states dropped", composed.num_dropped_states])
    print(format_table(["property", "value"], rows, title="incremental compile"))
    if store is not None:
        print(f"artifact cache: {store.root} ({len(store.keys())} artifacts)")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    from repro.compile import CompiledArtifact

    artifact = CompiledArtifact.load(args.artifact)
    if args.verify:
        artifact.verify()
    rows = [[key, value] for key, value in artifact.summary().items()]
    print(format_table(["property", "value"], rows))
    timings = artifact.manifest.get("timings") or []
    if timings:
        from repro.compile.ir import render_timing_rows

        print(
            format_table(
                ["pass", "ms", "notes"],
                render_timing_rows(timings),
                title="compiled with",
            )
        )
    if args.verify:
        print("content verified: fingerprint matches")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    automaton = load_automaton(args.automaton)
    data = Path(args.input).read_bytes()
    if args.limit:
        data = data[: args.limit]
    engine = Engine(
        automaton,
        backend=args.backend,
        max_kept_reports=args.max_kept_reports,
        on_truncation="error" if args.strict_reports else "warn",
    )
    result = engine.run(data)
    for report in result.reports[: args.max_reports]:
        code = f" code={report.code}" if report.code else ""
        print(f"cycle={report.cycle} state={report.state_id}{code}")
    print(
        f"# {result.stats.num_reports} reports over "
        f"{result.stats.num_cycles} cycles "
        f"(avg active states {result.stats.avg_active_states():.2f}, "
        f"backend {engine.backend_name})"
    )
    return 0


def cmd_scan(args: argparse.Namespace) -> int:
    from repro.service import MatchingService

    automaton = load_automaton(args.automaton)
    data = Path(args.input).read_bytes()
    if args.limit:
        data = data[: args.limit]
    config = scan_config_from_args(args)
    service = MatchingService(config)
    # --max-kept-reports caps *recording* (via the service default);
    # --max-reports only caps what is printed, mirroring `repro run`.
    # Truncation messaging is handled below, not by the service policy.
    result = service.scan(automaton, data, on_truncation="ignore")
    if result.truncated:
        message = (
            f"scan hit the kept-reports cap ({config.max_reports}); "
            f"further reports were counted but not recorded"
        )
        if args.strict_reports:
            raise ReproError(message)
        print(f"warning: {message}", file=sys.stderr)
    for report in result.reports[: args.max_reports]:
        code = f" code={report.code}" if report.code else ""
        print(f"cycle={report.cycle} state={report.state_id}{code}")
    backends = ",".join(sorted(set(result.backends))) or config.backend
    print(
        f"# {result.num_reports} reports over {len(data)} bytes | "
        f"{result.num_shards} shard(s), {config.workers} worker(s), "
        f"chunk {config.chunk_size} B, backend {backends} | "
        f"{result.elapsed_s:.3f} s, {result.throughput_mbps:.2f} MB/s"
    )
    if result.ledger is not None:
        print(result.ledger.render())
    if result.trace is not None:
        print(result.trace.render())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import MatchingServer, MatchingService, run_server
    from repro.telemetry.log import configure as configure_logging
    from repro.telemetry.metrics import enable as enable_metrics

    configure_logging(args.log_level)
    if args.metrics:
        # force-enable even under REPRO_TELEMETRY=0 so the `metrics`
        # op serves live series when the operator asked for them
        enable_metrics()
    service = MatchingService(scan_config_from_args(args))
    server = MatchingServer(
        service,
        host=args.host,
        port=args.port,
        max_frame_bytes=args.max_frame_bytes,
        max_inflight=args.max_inflight,
        executor_workers=args.executor_workers,
        allow_shutdown=not args.no_remote_shutdown,
    )
    run_server(server)
    return 0


def cmd_route(args: argparse.Namespace) -> int:
    import asyncio

    from repro.cluster.quotas import QuotaManager, TenantQuota
    from repro.cluster.router import ClusterRouter
    from repro.telemetry.log import configure as configure_logging
    from repro.telemetry.metrics import enable as enable_metrics

    configure_logging(args.log_level)
    if args.metrics:
        enable_metrics()
    quota = TenantQuota(
        bytes_per_s=args.tenant_bytes_per_s,
        requests_per_s=args.tenant_requests_per_s,
        max_open_sessions=args.tenant_max_sessions,
        compile_cost_per_window=args.tenant_compile_cost,
        window_s=args.quota_window,
    )
    router = ClusterRouter(
        args.node,
        replication=args.replication,
        quotas=None if quota.unlimited else QuotaManager(quota),
        host=args.host,
        port=args.port,
        max_frame_bytes=args.max_frame_bytes,
        allow_shutdown=not args.no_remote_shutdown,
        health_interval_s=args.health_interval,
        node_timeout_s=args.node_timeout or None,
    )

    async def _main() -> None:
        await router.start()
        host, port = router.address
        print(
            f"routing {len(router.pool)} node(s) on {host}:{port} "
            f"(replication {router.replication})"
        )
        try:
            await router.serve_forever()
        finally:
            await router.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    automaton = load_automaton(args.automaton)
    data = Path(args.input).read_bytes()
    if args.limit:
        data = data[: args.limit]
    engine = Engine(automaton)
    rows = []
    for design in ALL_DESIGNS:
        build = build_design(design, automaton)
        stats = engine.run(data, placement=build.placement, max_reports=0).stats
        breakdown = build.energy(stats)
        rows.append(
            [
                design,
                round(build.area_mm2, 4),
                round(build.timing.throughput_gbps(), 2),
                round(breakdown.per_cycle_pj(), 2),
                round(build.power_w(stats), 4),
                round(build.compute_density_gbps_mm2(), 1),
            ]
        )
    print(
        format_table(
            ["design", "area mm2", "Gbps", "pJ/cycle", "W", "Gbps/mm2"],
            rows,
            title=f"{automaton.name}: {len(automaton)} states, {len(data)} bytes",
        )
    )
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.run_all import run_all

    run_all(
        scale=args.scale,
        stream_length=args.stream,
        out_dir=args.out,
        only=args.only,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile an automaton to CAMA")
    p_compile.add_argument("automaton")
    p_compile.add_argument("--optimize", action="store_true")
    p_compile.add_argument(
        "--stride",
        type=int,
        choices=(1, 2),
        default=1,
        help="temporal stride (2 = one step per symbol pair)",
    )
    p_compile.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="auto",
        help="execution backend for the kernel-prebuild pass",
    )
    p_compile.add_argument(
        "--out",
        default=None,
        metavar="ARTIFACT.npz",
        help="save a serializable compiled-ruleset artifact",
    )
    p_compile.add_argument(
        "--timings",
        action="store_true",
        help="print per-pass pipeline timings",
    )
    p_compile.add_argument(
        "--incremental",
        action="store_true",
        help="compile per connected component, reusing cached component "
        "artifacts (requires stride 1, no --optimize)",
    )
    p_compile.add_argument(
        "--artifact-cache",
        default=None,
        metavar="DIR",
        help="persistent per-component artifact store for --incremental",
    )
    p_compile.add_argument(
        "--compile-workers",
        type=int,
        default=1,
        help="process-pool fan-out for missing components (--incremental)",
    )
    p_compile.set_defaults(fn=cmd_compile)

    p_inspect = sub.add_parser(
        "inspect", help="print a compiled artifact's manifest"
    )
    p_inspect.add_argument("artifact")
    p_inspect.add_argument(
        "--verify",
        action="store_true",
        help="recompute the content fingerprint and check it",
    )
    p_inspect.set_defaults(fn=cmd_inspect)

    def add_backend_options(p: argparse.ArgumentParser) -> None:
        # the flags behind ScanConfig's backend/max_reports/on_truncation
        # (and Engine's equivalents for `repro run`)
        p.add_argument(
            "--backend",
            choices=BACKEND_NAMES,
            default="auto",
            help="execution backend (auto picks per automaton/shard)",
        )
        p.add_argument(
            "--max-kept-reports",
            type=int,
            default=DEFAULT_MAX_KEPT_REPORTS,
            help="cap on recorded (not counted) reports per run",
        )
        p.add_argument(
            "--strict-reports",
            action="store_true",
            help="error (instead of warn) when the kept-reports cap truncates",
        )

    def add_scan_config_options(p: argparse.ArgumentParser) -> None:
        # one block for every service-shaped subcommand; the flags map
        # 1:1 onto ScanConfig fields via scan_config_from_args
        add_backend_options(p)
        p.add_argument("--chunk-size", type=int, default=65536)
        p.add_argument("--shards", type=int, default=1)
        p.add_argument(
            "--workers",
            type=int,
            default=1,
            help="shard-scan processes per scan (1 = serial)",
        )
        p.add_argument(
            "--artifact-cache",
            default=None,
            metavar="DIR",
            help="persistent compiled-artifact cache directory (warm "
            "restarts skip compilation; spawn workers load artifacts)",
        )
        p.add_argument(
            "--ledger",
            action="store_true",
            help="attach the modeled CAMA hardware ledger (energy pJ, "
            "cycle latency, tile occupancy) to every scan",
        )
        p.add_argument(
            "--ledger-design",
            choices=ALL_DESIGNS,
            default="CAMA-E",
            help="hardware design point the ledger models",
        )
        p.add_argument(
            "--trace",
            action="store_true",
            help="record per-scan trace spans (compile passes, shard "
            "runs, kernel chunks) and print the span tree",
        )

    p_run = sub.add_parser("run", help="simulate an automaton on an input file")
    p_run.add_argument("automaton")
    p_run.add_argument("input")
    p_run.add_argument("--limit", type=int, default=0)
    p_run.add_argument("--max-reports", type=int, default=50)
    add_backend_options(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_scan = sub.add_parser(
        "scan", help="scan an input through the streaming matching service"
    )
    p_scan.add_argument("automaton")
    p_scan.add_argument("input")
    p_scan.add_argument("--limit", type=int, default=0)
    p_scan.add_argument("--max-reports", type=int, default=50)
    add_scan_config_options(p_scan)
    p_scan.set_defaults(fn=cmd_scan)

    p_serve = sub.add_parser(
        "serve", help="run the network matching server (NDJSON over TCP)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8765, help="0 picks a free port"
    )
    p_serve.add_argument(
        "--executor-workers",
        type=int,
        default=4,
        help="threads bridging the event loop to the matching engines",
    )
    p_serve.add_argument(
        "--max-frame-bytes",
        type=int,
        default=8 * 1024 * 1024,
        help="reject request/response frames larger than this",
    )
    p_serve.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="per-connection bound on queued frames (backpressure)",
    )
    p_serve.add_argument(
        "--no-remote-shutdown",
        action="store_true",
        help="ignore client 'shutdown' frames",
    )
    p_serve.add_argument(
        "--log-level",
        default="info",
        help="JSON-lines log level for the 'repro' logger tree "
        "(debug|info|warning|error)",
    )
    p_serve.add_argument(
        "--metrics",
        action="store_true",
        help="force-enable the metrics registry (overrides "
        "REPRO_TELEMETRY=0); scrape via the 'metrics' op",
    )
    add_scan_config_options(p_serve)
    p_serve.set_defaults(fn=cmd_serve)

    p_route = sub.add_parser(
        "route",
        help="run the cluster router in front of serve nodes",
    )
    p_route.add_argument("--host", default="127.0.0.1")
    p_route.add_argument(
        "--port", type=int, default=8700, help="0 picks a free port"
    )
    p_route.add_argument(
        "--node",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="fleet node address (repeatable); more can join at "
        "runtime via the 'hello' op",
    )
    p_route.add_argument(
        "--replication",
        type=int,
        default=2,
        help="nodes per ruleset (>= 2 enables mid-stream failover)",
    )
    p_route.add_argument(
        "--health-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="node liveness probe period",
    )
    p_route.add_argument(
        "--node-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-request node round-trip budget; a hung node fails "
        "over like a dead one (0 = wait forever)",
    )
    p_route.add_argument(
        "--tenant-bytes-per-s",
        type=float,
        default=None,
        help="per-tenant sustained scan/feed byte rate (unset = no cap)",
    )
    p_route.add_argument(
        "--tenant-requests-per-s",
        type=float,
        default=None,
        help="per-tenant sustained scan/feed request rate",
    )
    p_route.add_argument(
        "--tenant-max-sessions",
        type=int,
        default=None,
        help="per-tenant cap on concurrently open sessions",
    )
    p_route.add_argument(
        "--tenant-compile-cost",
        type=int,
        default=None,
        help="per-tenant compile cost (pattern count) per quota window",
    )
    p_route.add_argument(
        "--quota-window",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="burst window of the rate quotas",
    )
    p_route.add_argument(
        "--max-frame-bytes", type=int, default=8 * 1024 * 1024
    )
    p_route.add_argument(
        "--no-remote-shutdown",
        action="store_true",
        help="ignore client 'shutdown' frames",
    )
    p_route.add_argument("--log-level", default="info")
    p_route.add_argument(
        "--metrics",
        action="store_true",
        help="force-enable the metrics registry",
    )
    p_route.set_defaults(fn=cmd_route)

    p_eval = sub.add_parser("evaluate", help="compare designs on a workload")
    p_eval.add_argument("automaton")
    p_eval.add_argument("input")
    p_eval.add_argument("--limit", type=int, default=0)
    p_eval.set_defaults(fn=cmd_evaluate)

    p_exp = sub.add_parser("experiments", help="regenerate paper tables/figures")
    p_exp.add_argument("--scale", type=float, default=1 / 16)
    p_exp.add_argument("--stream", type=int, default=10_000)
    p_exp.add_argument("--out", default="results")
    p_exp.add_argument("--only", nargs="*", default=None)
    p_exp.set_defaults(fn=cmd_experiments)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
