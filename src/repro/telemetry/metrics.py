"""A dependency-free, thread-safe metrics registry.

Instrumentation scattered through hot paths must cost (almost) nothing
when nobody is looking, so the design center is the *disabled* case:
every instrument handed out by :class:`MetricsRegistry` checks one
boolean attribute before touching its lock.  When telemetry is off the
whole observation is an attribute load and a branch — cheap enough to
leave in kernel chunk loops, cache lookups, and the server's frame
dispatch (the telemetry-overhead benchmark in
``benchmarks/bench_telemetry.py`` holds this to <5% on the dense
micro-workload).

Model (a deliberately small subset of the Prometheus one):

``Counter``
    Monotonically increasing float, ``inc(amount)``.
``Gauge``
    Settable float, ``set(value)`` / ``inc()`` / ``dec()``.
``Histogram``
    Fixed upper-bound buckets (cumulative, ``+Inf`` implied) plus
    ``_sum``/``_count``, ``observe(value)``.

Instruments are created through family objects
(:meth:`MetricsRegistry.counter` etc.) that carry the metric name,
help string, and label *names*; concrete children are materialized per
label-*value* tuple via :meth:`Family.labels` and cached, so hot paths
resolve their child once and hold it.  Everything is guarded by one
registry-wide lock — observation rates here are per-chunk / per-frame,
not per-cycle, so a single lock is simpler than sharding and plenty
fast (the concurrency tests hammer it from many threads and assert
exact counts).

A module-level :func:`default_registry` serves the whole process; the
``REPRO_TELEMETRY`` environment variable (``0``/``false``/``off`` to
disable, anything else to enable; unset = enabled) sets its initial
state, and :func:`enable`/:func:`disable` flip it at runtime.
:func:`render_prometheus` exposes the registry in the Prometheus text
format (v0.0.4) for the server's ``metrics`` op.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Iterable, Mapping

from repro.errors import ConfigError

__all__ = [
    "Counter",
    "Family",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "disable",
    "enable",
    "render_prometheus",
]

#: default latency buckets (seconds): 100us .. 30s, roughly x3 steps
DEFAULT_SECONDS_BUCKETS = (
    0.0001,
    0.0003,
    0.001,
    0.003,
    0.01,
    0.03,
    0.1,
    0.3,
    1.0,
    3.0,
    10.0,
    30.0,
)


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c == "_" for c in name):
        raise ConfigError(
            f"invalid metric/label name {name!r} (use [a-zA-Z0-9_])"
        )
    return name


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("registry", "value")

    def __init__(self, registry: "MetricsRegistry") -> None:
        self.registry = registry
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        registry = self.registry
        if not registry.enabled:
            return
        if amount < 0:
            raise ConfigError("counters only go up; use a Gauge")
        with registry._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (queue depths, occupancy)."""

    __slots__ = ("registry", "value")

    def __init__(self, registry: "MetricsRegistry") -> None:
        self.registry = registry
        self.value = 0.0

    def set(self, value: float) -> None:
        registry = self.registry
        if not registry.enabled:
            return
        with registry._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        registry = self.registry
        if not registry.enabled:
            return
        with registry._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Fixed-bucket distribution (cumulative buckets, +Inf implied)."""

    __slots__ = ("registry", "bounds", "bucket_counts", "sum", "count")

    def __init__(
        self, registry: "MetricsRegistry", bounds: tuple[float, ...]
    ) -> None:
        self.registry = registry
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        registry = self.registry
        if not registry.enabled:
            return
        with registry._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1


class Family:
    """One named metric with label names; children per label values."""

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        kind: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.registry = registry
        self.name = _check_name(name)
        self.help = help
        self.kind = kind
        self.label_names = tuple(_check_name(n) for n in label_names)
        self.buckets = buckets
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}

    def labels(self, *values: str) -> Counter | Gauge | Histogram:
        """The child for one label-value tuple (created on first use)."""
        if len(values) != len(self.label_names):
            raise ConfigError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {len(values)} value(s)"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self.registry._lock:
                child = self._children.get(key)
                if child is None:
                    if self.kind == "counter":
                        child = Counter(self.registry)
                    elif self.kind == "gauge":
                        child = Gauge(self.registry)
                    else:
                        child = Histogram(self.registry, self.buckets)
                    self._children[key] = child
        return child


class MetricsRegistry:
    """Holds every metric family; hands out instruments by name.

    Re-declaring a family with the same name returns the existing one
    (so import-order never matters) but raises on a kind or label-name
    mismatch — two call sites disagreeing about a metric is a bug.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: dict[str, Family] = {}

    # -- declaration ------------------------------------------------------
    def _family(
        self,
        name: str,
        help: str,
        kind: str,
        label_names: Iterable[str],
        buckets: tuple[float, ...] | None = None,
    ) -> Family:
        label_names = tuple(label_names)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.label_names != label_names:
                    raise ConfigError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.label_names}, cannot "
                        f"re-register as {kind}{label_names}"
                    )
                return existing
            family = Family(self, name, help, kind, label_names, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str, label_names: Iterable[str] = ()
    ) -> Family:
        return self._family(name, help, "counter", label_names)

    def gauge(
        self, name: str, help: str, label_names: Iterable[str] = ()
    ) -> Family:
        return self._family(name, help, "gauge", label_names)

    def histogram(
        self,
        name: str,
        help: str,
        label_names: Iterable[str] = (),
        buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
    ) -> Family:
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigError("histogram buckets must be sorted and non-empty")
        return self._family(name, help, "histogram", label_names, tuple(buckets))

    # -- state ------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every recorded value (families stay declared).  Tests only."""
        with self._lock:
            for family in self._families.values():
                family._children.clear()

    # -- introspection ----------------------------------------------------
    def collect(self) -> dict[str, dict]:
        """Snapshot: ``{name: {kind, help, samples: {labels: value}}}``.

        Counter/gauge samples are floats; histogram samples are dicts
        with ``sum``/``count``/``buckets``.  The snapshot is taken under
        the lock, so concurrent increments never produce torn reads.
        """
        out: dict[str, dict] = {}
        with self._lock:
            for name, family in sorted(self._families.items()):
                samples: dict[tuple[str, ...], object] = {}
                for key, child in family._children.items():
                    if isinstance(child, Histogram):
                        samples[key] = {
                            "sum": child.sum,
                            "count": child.count,
                            "buckets": list(
                                zip(child.bounds, child.bucket_counts)
                            ),
                            "inf": child.bucket_counts[-1],
                        }
                    else:
                        samples[key] = child.value
                out[name] = {
                    "kind": family.kind,
                    "help": family.help,
                    "label_names": family.label_names,
                    "samples": samples,
                }
        return out


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_str(names: tuple[str, ...], values: tuple[str, ...], extra="") -> str:
    pairs = [
        f'{n}="{v}"'
        for n, v in zip(names, values)
    ]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """The registry in the Prometheus text exposition format (0.0.4)."""
    registry = registry if registry is not None else default_registry()
    lines: list[str] = []
    for name, family in registry.collect().items():
        lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['kind']}")
        label_names = family["label_names"]
        for values, sample in sorted(family["samples"].items()):
            if family["kind"] == "histogram":
                cumulative = 0
                for bound, count in sample["buckets"]:
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        + _label_str(
                            label_names, values, f'le="{_format_value(bound)}"'
                        )
                        + f" {cumulative}"
                    )
                cumulative += sample["inf"]
                lines.append(
                    f"{name}_bucket"
                    + _label_str(label_names, values, 'le="+Inf"')
                    + f" {cumulative}"
                )
                lines.append(
                    f"{name}_sum"
                    + _label_str(label_names, values)
                    + f" {_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count"
                    + _label_str(label_names, values)
                    + f" {sample['count']}"
                )
            else:
                lines.append(
                    name
                    + _label_str(label_names, values)
                    + f" {_format_value(sample)}"
                )
    return "\n".join(lines) + "\n"


def _env_enabled() -> bool:
    raw = os.environ.get("REPRO_TELEMETRY", "").strip().lower()
    return raw not in ("0", "false", "off", "no")


_DEFAULT = MetricsRegistry(enabled=_env_enabled())


def default_registry() -> MetricsRegistry:
    """The process-wide registry every built-in instrument lives in."""
    return _DEFAULT


def enable() -> None:
    """Turn telemetry collection on for the process-wide registry."""
    _DEFAULT.enable()


def disable() -> None:
    """Turn telemetry collection off (instruments become no-ops)."""
    _DEFAULT.disable()
