"""Observability for the whole stack: metrics, traces, hardware ledger.

Three pillars, importable independently:

:mod:`repro.telemetry.metrics`
    Dependency-free, thread-safe metrics registry (counters, gauges,
    fixed-bucket histograms) instrumenting kernel chunk loops, compile
    passes, the ruleset/artifact caches, shard fan-out, and the network
    server.  Near-zero cost when disabled; Prometheus text exposition
    via :func:`render_prometheus` and the server's ``metrics`` op.
:mod:`repro.telemetry.tracing`
    Opt-in per-scan span trees (scan -> shards -> chunks, plus compile
    passes) carried through a contextvar; the ``trace_id`` is echoed in
    protocol frames and CLI output.
:mod:`repro.telemetry.ledger`
    The opt-in hardware ledger: modeled CAMA energy (Fig. 12
    breakdown), cycle latency, and tile occupancy attached to scan
    results via a reference side-simulation that reproduces the
    offline experiments' accounting exactly.

Plus :mod:`repro.telemetry.log`, the JSON-lines structured logger the
server uses.

The ledger depends on :mod:`repro.arch` (which sits *above* the
simulator), so it is re-exported lazily — importing
``repro.telemetry`` from low layers (``repro.sim``) stays cheap and
cycle-free.
"""

from __future__ import annotations

from repro.telemetry.log import configure as configure_logging
from repro.telemetry.log import get_logger
from repro.telemetry.metrics import (
    MetricsRegistry,
    default_registry,
    disable,
    enable,
    render_prometheus,
)
from repro.telemetry.tracing import (
    Span,
    Trace,
    current_trace,
    new_trace_id,
    start_trace,
)

_LEDGER_NAMES = (
    "HardwareLedger",
    "LedgerAccumulator",
    "LedgerProbe",
    "check_ledger_design",
)

__all__ = [
    "MetricsRegistry",
    "Span",
    "Trace",
    "configure_logging",
    "current_trace",
    "default_registry",
    "disable",
    "enable",
    "get_logger",
    "new_trace_id",
    "render_prometheus",
    "start_trace",
    *_LEDGER_NAMES,
]


def __getattr__(name: str):
    if name in _LEDGER_NAMES:
        from repro.telemetry import ledger

        return getattr(ledger, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
