"""Structured JSON-lines logging for the serving stack.

One event per line, machine-parseable, with the fields every event
shares (``ts``, ``level``, ``logger``, ``event``) followed by the
call's keyword arguments.  Built on the stdlib :mod:`logging` module —
``repro.*`` loggers propagate into any logging configuration the host
application already has — with a :class:`JsonFormatter` the CLI
installs on stderr via :func:`configure` (``repro serve --log-level``).

Usage:

    log = get_logger("repro.service.server")
    log.info("connection_open", peer=str(peer), connections=3)
    log.warning("frame_rejected", error=str(exc), code="bad-frame")

A ``trace_id`` field is attached automatically when a trace is active
in the calling context, so server log lines join with client-side
observations of the same scan.
"""

from __future__ import annotations

import io
import json
import logging
from typing import Any

from repro.telemetry.tracing import current_trace

__all__ = ["JsonFormatter", "StructuredLogger", "configure", "get_logger"]

LEVELS = ("debug", "info", "warning", "error", "critical")


class JsonFormatter(logging.Formatter):
    """Formats a record as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        payload.update(getattr(record, "fields", {}))
        if record.exc_info and record.exc_info[1] is not None:
            payload["exception"] = repr(record.exc_info[1])
        return json.dumps(payload, default=str, separators=(",", ":"))


class StructuredLogger:
    """Thin wrapper turning kwargs into structured log fields."""

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @property
    def name(self) -> str:
        return self._logger.name

    def is_enabled_for(self, level: str) -> bool:
        return self._logger.isEnabledFor(check_level(level))

    def _log(self, level: int, event: str, fields: dict) -> None:
        if not self._logger.isEnabledFor(level):
            return
        trace = current_trace()
        if trace is not None and "trace_id" not in fields:
            fields = {**fields, "trace_id": trace.trace_id}
        self._logger.log(level, event, extra={"fields": fields})

    def debug(self, event: str, **fields) -> None:
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields) -> None:
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields) -> None:
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields) -> None:
        self._log(logging.ERROR, event, fields)


def get_logger(name: str) -> StructuredLogger:
    """A structured logger (stdlib-backed, so host config applies)."""
    return StructuredLogger(logging.getLogger(name))


def check_level(level: str) -> int:
    """Map a CLI level name to the stdlib constant (ConfigError on junk)."""
    from repro.errors import ConfigError

    numeric = logging.getLevelName(str(level).upper())
    if not isinstance(numeric, int):
        raise ConfigError(
            f"unknown log level {level!r}; known: {', '.join(LEVELS)}"
        )
    return numeric


def configure(
    level: str = "info", *, stream: io.TextIOBase | None = None
) -> logging.Handler:
    """Install the JSON-lines handler on the ``repro`` logger tree.

    Replaces any handler a previous :func:`configure` installed (so
    tests and repeated ``serve`` invocations don't stack handlers) and
    returns the installed handler.  ``stream`` defaults to stderr.
    """
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_telemetry", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonFormatter())
    handler._repro_telemetry = True
    root.addHandler(handler)
    root.setLevel(check_level(level))
    return handler
