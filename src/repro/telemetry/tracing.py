"""Per-scan trace spans: scan -> shards -> chunks -> kernel steps.

A :class:`Trace` is a flat list of finished :class:`Span` records tied
together by ``span_id``/``parent_id`` (a tree, stored post-order as
spans finish).  The active trace travels through a ``contextvars``
variable, so deep layers — the compile pipeline's pass timer, the
engine's chunk loop, the dispatcher's shard fan-out — attach spans
without any parameter plumbing: they ask :func:`current_trace` and do
nothing when no trace is active (the common case; one contextvar read).

Spans are *cheap but not free*, so tracing is opt-in per scan
(``ScanConfig(trace=True)`` / ``repro scan --trace``) rather than a
global toggle like metrics.  A trace caps itself at
:data:`MAX_SPANS_PER_TRACE` finished spans and counts the overflow in
``dropped`` instead of growing without bound on huge streams.

The ``trace_id`` (32 hex chars) is echoed in protocol frames and CLI
output so a client-side observation can be joined with server-side
spans and log lines.
"""

from __future__ import annotations

import contextvars
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "MAX_SPANS_PER_TRACE",
    "Span",
    "Trace",
    "current_trace",
    "new_trace_id",
    "start_trace",
]

#: finished-span cap per trace; beyond it spans are counted, not kept
MAX_SPANS_PER_TRACE = 512


def new_trace_id() -> str:
    return uuid.uuid4().hex


@dataclass
class Span:
    """One finished timed operation inside a trace."""

    name: str
    span_id: int
    parent_id: int | None
    start_s: float
    duration_s: float
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }


class Trace:
    """One scan's span tree, accumulated as operations finish.

    Not thread-safe by design: a trace follows one logical scan, and
    the sharded dispatcher's in-process thread pool is given per-shard
    child traces that are merged afterwards (process pools simply don't
    trace — spans can't cross a pickle boundary cheaply).
    """

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.spans: list[Span] = []
        self.dropped = 0
        self._next_id = 0
        self._stack: list[int] = []

    @contextmanager
    def span(self, name: str, **attrs):
        """Time a block as a child of the innermost open span."""
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        self._stack.append(span_id)
        start = time.perf_counter()
        record = Span(
            name=name,
            span_id=span_id,
            parent_id=parent,
            start_s=start,
            duration_s=0.0,
            attrs=attrs,
        )
        try:
            yield record
        finally:
            record.duration_s = time.perf_counter() - start
            self._stack.pop()
            self._add(record)

    def add_span(
        self,
        name: str,
        duration_s: float,
        *,
        start_s: float | None = None,
        **attrs,
    ) -> None:
        """Attach an already-timed operation (e.g. a compile PassTiming)."""
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        self._add(
            Span(
                name=name,
                span_id=span_id,
                parent_id=parent,
                start_s=time.perf_counter() if start_s is None else start_s,
                duration_s=duration_s,
                attrs=attrs,
            )
        )

    def _add(self, span: Span) -> None:
        if len(self.spans) >= MAX_SPANS_PER_TRACE:
            self.dropped += 1
            return
        self.spans.append(span)

    def merge_child(self, child: "Trace", parent_span_id: int | None) -> None:
        """Fold a per-shard child trace under one of this trace's spans."""
        offset = self._next_id
        for span in child.spans:
            self._add(
                Span(
                    name=span.name,
                    span_id=span.span_id + offset,
                    parent_id=(
                        span.parent_id + offset
                        if span.parent_id is not None
                        else parent_span_id
                    ),
                    start_s=span.start_s,
                    duration_s=span.duration_s,
                    attrs=span.attrs,
                )
            )
        self._next_id = offset + child._next_id
        self.dropped += child.dropped

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "spans": [s.to_dict() for s in self.spans],
            "dropped": self.dropped,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Trace":
        trace = cls(payload.get("trace_id"))
        for raw in payload.get("spans", ()):
            trace.spans.append(
                Span(
                    name=raw["name"],
                    span_id=raw["span_id"],
                    parent_id=raw.get("parent_id"),
                    start_s=raw.get("start_s", 0.0),
                    duration_s=raw.get("duration_s", 0.0),
                    attrs=raw.get("attrs", {}),
                )
            )
        trace.dropped = payload.get("dropped", 0)
        trace._next_id = 1 + max(
            (s.span_id for s in trace.spans), default=-1
        )
        return trace

    def render(self) -> str:
        """An indented text tree of the spans (CLI `--trace` output)."""
        children: dict[int | None, list[Span]] = {}
        for span in self.spans:
            children.setdefault(span.parent_id, []).append(span)
        lines = [f"trace {self.trace_id}"]

        def walk(parent: int | None, depth: int) -> None:
            for span in children.get(parent, ()):
                attrs = " ".join(
                    f"{k}={v}" for k, v in sorted(span.attrs.items())
                )
                lines.append(
                    "  " * depth
                    + f"- {span.name}  {span.duration_s * 1e3:.3f} ms"
                    + (f"  [{attrs}]" if attrs else "")
                )
                walk(span.span_id, depth + 1)

        walk(None, 1)
        if self.dropped:
            lines.append(f"  ... {self.dropped} span(s) dropped (cap)")
        return "\n".join(lines)


_current: contextvars.ContextVar[Trace | None] = contextvars.ContextVar(
    "repro_trace", default=None
)


def current_trace() -> Trace | None:
    """The trace active in this context, or None (the fast common case)."""
    return _current.get()


@contextmanager
def start_trace(trace: Trace | None = None):
    """Activate a trace for the enclosed block (and its callees)."""
    trace = trace or Trace()
    token = _current.set(trace)
    try:
        yield trace
    finally:
        _current.reset(token)
