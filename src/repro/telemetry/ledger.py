"""The hardware ledger: modeled CAMA cost attached to serving traffic.

The paper's central claim is an energy/latency model (§VIII.C, Fig. 11
/ Fig. 12); the serving stack's central artifact is a scan result.
This module joins them: a :class:`HardwareLedger` is the modeled cost —
energy breakdown in pJ, cycle latency at the design's operated
frequency, and tile occupancy — of executing one scan (or one streamed
session) on the chosen CAMA design.

Accounting fidelity is the point, so the ledger does **not** reuse the
serving path's activity statistics (shards run without a placement,
and a sharded run's per-partition activity would not equal the
monolithic placement's anyway).  Instead :class:`LedgerProbe` runs a
*reference side-simulation*: the monolithic automaton on the sparse
kernel with the design build's placement and ``max_reports=0`` —
literally the accounting path of
``repro.experiments.fig12_energy_breakdown`` (see
``ExperimentContext.stats``), so a served scan's ledger matches the
offline experiment's numbers for the same workload exactly (the
differential test in ``tests/test_ledger.py`` asserts equality).  The
probe is resumable (chunk by chunk, folding partition-resolved
statistics through :meth:`TraceStats.accumulate`), which is what lets
streamed sessions carry a running ledger.

This is the opt-in, pay-for-what-you-ask half of telemetry: the probe
roughly doubles simulation work, so it only exists when
``ScanConfig(hardware_ledger=True)`` asked for it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.designs import ALL_DESIGNS, DesignBuild, build_design
from repro.errors import ConfigError
from repro.sim.engine import Engine
from repro.sim.trace import TraceStats

__all__ = [
    "ALL_DESIGNS",
    "HardwareLedger",
    "LedgerAccumulator",
    "LedgerProbe",
    "check_ledger_design",
]

#: nominal state capacity of one partition (a local switch / SM array);
#: every modeled design provisions 256-position arrays (FCB-mode CAMA
#: switches hold 128, so occupancy is approximate there)
NOMINAL_PARTITION_STATES = 256


def check_ledger_design(design: str) -> str:
    """Validate a ledger design name (raises :class:`ConfigError`)."""
    if design not in ALL_DESIGNS:
        known = ", ".join(ALL_DESIGNS)
        raise ConfigError(
            f"unknown ledger design {design!r}; known: {known}"
        )
    return design


@dataclass(frozen=True)
class HardwareLedger:
    """Modeled hardware cost of one scan on one design.

    Energy fields are the Fig. 12 breakdown (absolute pJ over the whole
    scan); ``modeled_latency_s`` is ``num_cycles`` at the design's
    operated frequency (Table IV); ``tile_occupancy`` is the fraction
    of provisioned state slots actually holding states.
    """

    design: str
    num_cycles: int
    state_match_pj: float
    switch_pj: float
    wire_pj: float
    encoder_pj: float
    total_pj: float
    freq_ghz: float
    modeled_latency_s: float
    modeled_throughput_gbps: float
    num_partitions: int
    placed_states: int
    tile_occupancy: float
    counts: dict

    @property
    def per_cycle_pj(self) -> float:
        return self.total_pj / self.num_cycles if self.num_cycles else 0.0

    def fractions(self) -> dict[str, float]:
        """Fig. 12's stacked-bar fractions of the total."""
        total = self.total_pj or 1.0
        return {
            "state_match": self.state_match_pj / total,
            "switch_wire": (self.switch_pj + self.wire_pj) / total,
            "encoder": self.encoder_pj / total,
        }

    def to_dict(self) -> dict:
        return {
            "design": self.design,
            "num_cycles": self.num_cycles,
            "state_match_pj": self.state_match_pj,
            "switch_pj": self.switch_pj,
            "wire_pj": self.wire_pj,
            "encoder_pj": self.encoder_pj,
            "total_pj": self.total_pj,
            "per_cycle_pj": self.per_cycle_pj,
            "freq_ghz": self.freq_ghz,
            "modeled_latency_s": self.modeled_latency_s,
            "modeled_throughput_gbps": self.modeled_throughput_gbps,
            "num_partitions": self.num_partitions,
            "placed_states": self.placed_states,
            "tile_occupancy": self.tile_occupancy,
            "counts": dict(self.counts),
        }

    @classmethod
    def from_stats(cls, build: DesignBuild, stats: TraceStats) -> "HardwareLedger":
        """Fold partition-resolved statistics through the design's models."""
        energy = build.energy(stats)
        timing = build.timing
        freq = timing.freq_operated_ghz
        placed = len(build.placement.partition_of)
        provisioned = build.placement.num_partitions * NOMINAL_PARTITION_STATES
        return cls(
            design=build.design,
            num_cycles=stats.num_cycles,
            state_match_pj=energy.state_match_pj,
            switch_pj=energy.local_switch_pj + energy.global_switch_pj,
            wire_pj=energy.wire_pj,
            encoder_pj=energy.encoder_pj,
            total_pj=energy.total_pj,
            freq_ghz=freq,
            modeled_latency_s=stats.num_cycles / (freq * 1e9) if freq else 0.0,
            modeled_throughput_gbps=timing.throughput_gbps(),
            num_partitions=build.placement.num_partitions,
            placed_states=placed,
            tile_occupancy=placed / provisioned if provisioned else 0.0,
            counts=dict(build.counts),
        )

    def render(self) -> str:
        """Human-readable lines for CLI ``--ledger`` output."""
        fractions = self.fractions()
        return "\n".join(
            [
                f"ledger design={self.design}  cycles={self.num_cycles}",
                (
                    f"  energy: total={self.total_pj:.1f} pJ "
                    f"({self.per_cycle_pj:.3f} pJ/cycle) — "
                    f"state-match {100 * fractions['state_match']:.1f}% / "
                    f"switch+wire {100 * fractions['switch_wire']:.1f}% / "
                    f"encoder {100 * fractions['encoder']:.1f}%"
                ),
                (
                    f"  timing: {self.freq_ghz:.2f} GHz -> "
                    f"{self.modeled_latency_s * 1e6:.2f} us modeled latency, "
                    f"{self.modeled_throughput_gbps:.1f} Gbps line rate"
                ),
                (
                    f"  placement: {self.placed_states} states in "
                    f"{self.num_partitions} partitions "
                    f"({100 * self.tile_occupancy:.1f}% occupancy)"
                ),
            ]
        )


class LedgerProbe:
    """Resumable reference accounting for one automaton on one design.

    Feeds chunks through a monolithic sparse engine carrying the design
    build's placement — the exact accounting run of the Fig. 12
    experiment — and accumulates partition-resolved statistics, so
    :meth:`ledger` is available mid-stream at any chunk boundary.
    """

    def __init__(
        self,
        automaton,
        design: str = "CAMA-E",
        *,
        build: DesignBuild | None = None,
        engine: Engine | None = None,
    ) -> None:
        check_ledger_design(design)
        # pinned to the sparse kernel: it is the reference backend the
        # offline experiments collect activity with.  ``build`` and
        # ``engine`` let a caller (the service) reuse cached reference
        # material across probes — engines are stateless between runs,
        # so sharing one is safe.
        self.build = build if build is not None else build_design(design, automaton)
        if engine is None:
            engine = Engine(automaton, backend="sparse")
        elif engine.backend_name != "sparse":
            raise ConfigError(
                "the ledger probe needs the sparse reference kernel, got "
                f"{engine.backend_name!r}"
            )
        self.engine = engine
        self.state = self.engine.initial_state()
        self.stats = TraceStats(num_states=len(automaton))

    def feed(self, chunk: bytes) -> None:
        result = self.engine.run_chunk(
            chunk,
            self.state,
            placement=self.build.placement,
            max_reports=0,
        )
        self.stats.accumulate(result.stats)

    def run(self, data: bytes) -> "HardwareLedger":
        self.feed(data)
        return self.ledger()

    def ledger(self) -> "HardwareLedger":
        return HardwareLedger.from_stats(self.build, self.stats)


class LedgerAccumulator:
    """Running totals over many ledgers (the service/server stats frame).

    Callers synchronize externally (the service folds under its own
    lock); this object just adds.
    """

    def __init__(self) -> None:
        self.scans = 0
        self.cycles = 0
        self.total_pj = 0.0
        self.state_match_pj = 0.0
        self.switch_pj = 0.0
        self.wire_pj = 0.0
        self.encoder_pj = 0.0
        self.modeled_latency_s = 0.0

    def add(self, ledger: HardwareLedger) -> None:
        self.scans += 1
        self.cycles += ledger.num_cycles
        self.total_pj += ledger.total_pj
        self.state_match_pj += ledger.state_match_pj
        self.switch_pj += ledger.switch_pj
        self.wire_pj += ledger.wire_pj
        self.encoder_pj += ledger.encoder_pj
        self.modeled_latency_s += ledger.modeled_latency_s

    def to_dict(self) -> dict:
        return {
            "scans": self.scans,
            "cycles": self.cycles,
            "total_pj": self.total_pj,
            "state_match_pj": self.state_match_pj,
            "switch_pj": self.switch_pj,
            "wire_pj": self.wire_pj,
            "encoder_pj": self.encoder_pj,
            "modeled_latency_s": self.modeled_latency_s,
        }
