"""Stage delays and clock frequencies (paper Table IV).

Every design's cycle is state matching -> local switch -> global
switch.  Pipelined designs (CAMA-T, Impala, eAP, CA) clock at the
slowest stage, which is the global switch for all of them; CAMA-E
cannot pipeline (its transition result feeds the CAM prechargers
directly), so its period is state-match + global-switch, with the
local switch hidden behind the global one (they operate in parallel).
Operated frequency leaves the paper's 10% margin. AP is the published
constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.circuits import CircuitLibrary
from repro.errors import ModelError

AP_FREQUENCY_GHZ = 0.133
FREQUENCY_MARGIN = 0.9
#: all evaluated designs consume one 8-bit symbol per cycle (1-stride)
BITS_PER_CYCLE = 8


@dataclass(frozen=True)
class DesignTiming:
    """Table IV row for one design."""

    design: str
    state_match_ps: float
    local_switch_ps: float
    global_switch_ps: float
    pipelined: bool
    freq_max_ghz: float
    freq_operated_ghz: float

    def throughput_gbps(self, bits_per_cycle: int = BITS_PER_CYCLE) -> float:
        return self.freq_operated_ghz * bits_per_cycle


def _timing(
    design: str,
    state_match_ps: float,
    local_ps: float,
    state_match_area: float,
    lib: CircuitLibrary,
    pipelined: bool,
) -> DesignTiming:
    global_ps = lib.global_switch().delay_ps + lib.global_wire_delay_ps(
        state_match_area
    )
    if pipelined:
        period = max(state_match_ps, local_ps, global_ps)
    else:
        # CAMA-E: match feeds prechargers; local hides behind global
        period = state_match_ps + global_ps
    freq_max = 1000.0 / period  # ps -> GHz
    return DesignTiming(
        design=design,
        state_match_ps=state_match_ps,
        local_switch_ps=local_ps,
        global_switch_ps=global_ps,
        pipelined=pipelined,
        freq_max_ghz=freq_max,
        freq_operated_ghz=freq_max * FREQUENCY_MARGIN,
    )


def cama_timing(variant: str, lib: CircuitLibrary | None = None) -> DesignTiming:
    if variant not in ("E", "T"):
        raise ModelError(f"unknown CAMA variant {variant!r}")
    lib = lib or CircuitLibrary()
    cam = lib.state_match_cam()
    return _timing(
        f"CAMA-{variant}",
        cam.delay_ps,
        lib.local_switch().delay_ps,
        cam.area_um2,
        lib,
        pipelined=variant == "T",
    )


def impala_timing(lib: CircuitLibrary | None = None) -> DesignTiming:
    lib = lib or CircuitLibrary()
    bank = lib.impala_state_match_bank()
    return _timing(
        "2-stride Impala",
        bank.delay_ps,
        lib.global_switch().delay_ps,  # Impala's local switch is 256x256 8T
        2 * bank.area_um2,
        lib,
        pipelined=True,
    )


def eap_timing(lib: CircuitLibrary | None = None) -> DesignTiming:
    lib = lib or CircuitLibrary()
    sm = lib.eap_state_match()
    return _timing(
        "eAP",
        sm.delay_ps,
        lib.global_switch().delay_ps,  # worst case: SM reused as FCB
        sm.area_um2,
        lib,
        pipelined=True,
    )


def ca_timing(lib: CircuitLibrary | None = None) -> DesignTiming:
    lib = lib or CircuitLibrary()
    sm = lib.ca_state_match()
    return _timing(
        "CA",
        sm.delay_ps,
        lib.global_switch().delay_ps,
        sm.area_um2,
        lib,
        pipelined=True,
    )


def ap_timing() -> DesignTiming:
    """Micron AP (50 nm): the paper treats it as a 0.133 GHz constant."""
    return DesignTiming(
        design="AP",
        state_match_ps=float("nan"),
        local_switch_ps=float("nan"),
        global_switch_ps=float("nan"),
        pipelined=True,
        freq_max_ghz=AP_FREQUENCY_GHZ,
        freq_operated_ghz=AP_FREQUENCY_GHZ,
    )


def all_timings(lib: CircuitLibrary | None = None) -> list[DesignTiming]:
    """Table IV: one row per design."""
    lib = lib or CircuitLibrary()
    return [
        cama_timing("E", lib),
        cama_timing("T", lib),
        impala_timing(lib),
        eap_timing(lib),
        ca_timing(lib),
        ap_timing(),
    ]
