"""Baseline mapping: how CA, Impala and eAP place an automaton.

All three baselines use 256-STE partitions (one state-matching bank +
one local switch per partition) packed greedily by connected component,
with the global switch connecting partitions (CA's flow, which Impala
and eAP inherit).  eAP additionally distinguishes RCB-feasible
partitions (diagonal band <= 21 under BFS placement) from partitions
that must reuse a state-matching array as a full crossbar.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.automata.analysis import bfs_order, connected_components
from repro.automata.nfa import Automaton
from repro.core.rrcb import EAP_KDIA
from repro.sim.trace import PartitionAssignment

PARTITION_CAPACITY = 256
#: partitions sharing one 256x256 global switch (16x16 ports)
PARTITIONS_PER_GLOBAL = 16


@dataclass
class BaselinePartition:
    index: int
    states: list[int] = field(default_factory=list)
    #: False when the partition holds a component whose BFS band exceeds
    #: the RCB's diagonal width (eAP then reuses an SM array as FCB)
    band_ok: bool = True


@dataclass
class BaselineMapping:
    """Placement of one automaton onto a 256-STE-partition baseline."""

    automaton_name: str
    partitions: list[BaselinePartition]
    state_partition: np.ndarray
    cross_edges: list[tuple[int, int]]
    num_global_switches: int

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    @property
    def num_fcb_partitions(self) -> int:
        """Partitions needing full-crossbar routing (eAP's SM reuse)."""
        return sum(1 for p in self.partitions if not p.band_ok)

    def placement(self, weights: np.ndarray | None = None) -> PartitionAssignment:
        return PartitionAssignment(
            partition_of=self.state_partition.copy(),
            num_partitions=self.num_partitions,
            weights=weights,
        )


def map_baseline(
    automaton: Automaton,
    *,
    capacity: int = PARTITION_CAPACITY,
    kdia: int = EAP_KDIA,
) -> BaselineMapping:
    """Greedy CC packing into ``capacity``-STE partitions."""
    n = len(automaton)
    state_partition = np.full(n, -1, dtype=np.int64)
    partitions: list[BaselinePartition] = []

    chunks: list[tuple[list[int], bool]] = []
    for component in connected_components(automaton):
        order = bfs_order(automaton, component)
        position = {s: i for i, s in enumerate(order)}
        band_ok = all(
            abs(position[u] - position[v]) <= kdia
            for u, v in automaton.transitions()
            if u in position and v in position
        )
        for start in range(0, len(order), capacity):
            chunks.append((order[start : start + capacity], band_ok))

    for chunk, band_ok in sorted(chunks, key=lambda c: len(c[0]), reverse=True):
        target = None
        for partition in partitions:
            if len(partition.states) + len(chunk) <= capacity:
                target = partition
                break
        if target is None:
            target = BaselinePartition(index=len(partitions))
            partitions.append(target)
        for state in chunk:
            state_partition[state] = target.index
        target.states.extend(chunk)
        target.band_ok = target.band_ok and band_ok

    cross_edges = [
        (u, v)
        for u, v in automaton.transitions()
        if state_partition[u] != state_partition[v]
    ]
    arrays_used = {
        int(state_partition[u]) // PARTITIONS_PER_GLOBAL for u, v in cross_edges
    } | {int(state_partition[v]) // PARTITIONS_PER_GLOBAL for u, v in cross_edges}
    return BaselineMapping(
        automaton_name=automaton.name,
        partitions=partitions,
        state_partition=state_partition,
        cross_edges=cross_edges,
        num_global_switches=len(arrays_used),
    )
