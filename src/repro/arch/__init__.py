"""Architecture models: circuits, timing, designs, energy, multi-stride."""

from repro.arch.baselines import BaselineMapping, map_baseline
from repro.arch.circuits import (
    CAM_SELECTIVE_FLOOR_PJ,
    VDD_VOLTS,
    CircuitLibrary,
    MacroModel,
    selective_precharge_energy,
)
from repro.arch.designs import (
    ALL_DESIGNS,
    DesignBuild,
    build_ca,
    build_cama,
    build_design,
    build_eap,
    build_impala,
)
from repro.arch.energy import (
    EnergyBreakdown,
    switch_access_energy,
)
from repro.arch.stride_models import (
    MultiStrideResult,
    impala4_state_count,
    multistride_energy,
    strided_placement,
)
from repro.arch.timing import (
    AP_FREQUENCY_GHZ,
    BITS_PER_CYCLE,
    DesignTiming,
    all_timings,
    ap_timing,
    ca_timing,
    cama_timing,
    eap_timing,
    impala_timing,
)

__all__ = [
    "ALL_DESIGNS",
    "AP_FREQUENCY_GHZ",
    "BITS_PER_CYCLE",
    "BaselineMapping",
    "CAM_SELECTIVE_FLOOR_PJ",
    "CircuitLibrary",
    "DesignBuild",
    "DesignTiming",
    "EnergyBreakdown",
    "MacroModel",
    "MultiStrideResult",
    "VDD_VOLTS",
    "all_timings",
    "ap_timing",
    "build_ca",
    "build_cama",
    "build_design",
    "build_eap",
    "build_impala",
    "ca_timing",
    "cama_timing",
    "eap_timing",
    "impala4_state_count",
    "impala_timing",
    "map_baseline",
    "multistride_energy",
    "selective_precharge_energy",
    "strided_placement",
    "switch_access_energy",
]
