"""28 nm circuit models (paper Table III) with calibrated scaling laws.

The paper evaluates every design with SPICE-derived macro numbers in
TSMC 28 nm (Table III).  Those five macros are this module's anchors
and are returned *exactly*.  Geometries the paper quotes elsewhere in
the text (the 64x256 CAM at 22 pJ, the 2.67 pJ selective-precharge
floor) are additional anchors.  Everything else (eAP's 96x96 RCB, the
256x32 input encoder) is interpolated with a bitline/periphery model

    E(r, c) = c * (alpha * r + beta)        [same shape for area/leakage]
    D(r)    = d0 + d1 * r                    [bitline RC dominates delay]

fitted per cell family to its two anchors.  The shape reflects how an
SRAM access scales: every column's bitline (r cells tall) swings, plus
a per-column periphery term.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError

#: supply voltage assumed for leakage power (28 nm typical)
VDD_VOLTS = 0.9

#: CA's global-switch wire delay anchor (paper §VIII.A)
CA_GLOBAL_WIRE_DELAY_PS = 99.0
#: wire energy charged per global-switch access at CA's wire length;
#: scaled by state-matching array area like the wire delay. Table III
#: does not quote a wire energy, so this constant is a documented
#: modeling assumption (a few mm of M4/M5 route in 28 nm).
CA_GLOBAL_WIRE_ENERGY_PJ = 2.0

#: CAMA-E's selective-precharge energy floor (paper §VIII.C: the CAM
#: access varies from 2.67 pJ to 16.78 pJ with the number of enabled
#: entries)
CAM_SELECTIVE_FLOOR_PJ = 2.67


@dataclass(frozen=True)
class MacroModel:
    """Access energy / delay / area / leakage of one memory macro."""

    family: str
    rows: int
    columns: int
    energy_pj: float
    delay_ps: float
    area_um2: float
    leakage_ua: float
    #: True when the numbers come straight from the paper
    is_anchor: bool

    @property
    def leakage_power_w(self) -> float:
        return self.leakage_ua * 1e-6 * VDD_VOLTS


# Table III verbatim -------------------------------------------------------
_ANCHORS: dict[tuple[str, int, int], tuple[float, float, float, float]] = {
    ("6T", 256, 256): (19.45, 416.0, 14877.0, 532.0),
    ("6T", 16, 256): (15.3, 317.0, 3659.0, 247.0),
    ("8T", 128, 128): (8.67, 292.0, 5655.0, 243.0),
    ("8T", 256, 256): (17.9, 394.0, 18153.0, 584.0),
    ("CAM", 16, 256): (16.78, 325.0, 3919.0, 299.0),
    # §VIII.D: a 64x256 CAM access costs 22 pJ (vs four 16x256 SRAMs at
    # 61.2 pJ). Delay/area/leakage are fitted values re-anchored here so
    # the energy fit has its second point.
    ("CAM", 64, 256): (22.0, 344.8, 7125.0, 406.0),
}


def _linear_fit(
    p1: tuple[float, float], p2: tuple[float, float]
) -> tuple[float, float]:
    """(slope, intercept) through two (x, y) points."""
    (x1, y1), (x2, y2) = p1, p2
    slope = (y2 - y1) / (x2 - x1)
    return slope, y1 - slope * x1


# per-column fits: y/c = alpha*r + beta, from each family's two anchors
_FITS: dict[str, dict[str, tuple[float, float]]] = {}


def _build_fits() -> None:
    pairs = {
        "6T": (("6T", 16, 256), ("6T", 256, 256)),
        "8T": (("8T", 128, 128), ("8T", 256, 256)),
        "CAM": (("CAM", 16, 256), ("CAM", 64, 256)),
    }
    for family, (k1, k2) in pairs.items():
        e1, d1, a1, l1 = _ANCHORS[k1]
        e2, d2, a2, l2 = _ANCHORS[k2]
        r1, c1 = k1[1], k1[2]
        r2, c2 = k2[1], k2[2]
        _FITS[family] = {
            "energy": _linear_fit((r1, e1 / c1), (r2, e2 / c2)),
            "area": _linear_fit((r1, a1 / c1), (r2, a2 / c2)),
            "leakage": _linear_fit((r1, l1 / c1), (r2, l2 / c2)),
            "delay": _linear_fit((r1, d1), (r2, d2)),
        }


_build_fits()


class CircuitLibrary:
    """Access point for all macro models; anchors returned verbatim."""

    def macro(self, family: str, rows: int, columns: int) -> MacroModel:
        if family not in _FITS:
            raise ModelError(
                f"unknown macro family {family!r} (expected 6T, 8T or CAM)"
            )
        if rows < 1 or columns < 1:
            raise ModelError(f"bad macro geometry: {rows}x{columns}")
        key = (family, rows, columns)
        if key in _ANCHORS:
            energy, delay, area, leak = _ANCHORS[key]
            return MacroModel(
                family, rows, columns, energy, delay, area, leak, is_anchor=True
            )
        fits = _FITS[family]
        ea, eb = fits["energy"]
        aa, ab = fits["area"]
        la, lb = fits["leakage"]
        da, db = fits["delay"]
        return MacroModel(
            family=family,
            rows=rows,
            columns=columns,
            energy_pj=columns * (ea * rows + eb),
            delay_ps=da * rows + db,
            area_um2=columns * (aa * rows + ab),
            leakage_ua=columns * (la * rows + lb),
            is_anchor=False,
        )

    # -- named macros used throughout the models --------------------------
    def sram6t(self, rows: int, columns: int) -> MacroModel:
        return self.macro("6T", rows, columns)

    def sram8t(self, rows: int, columns: int) -> MacroModel:
        return self.macro("8T", rows, columns)

    def cam8t(self, rows: int, columns: int) -> MacroModel:
        return self.macro("CAM", rows, columns)

    def state_match_cam(self) -> MacroModel:
        """CAMA's 16x256 state-matching sub-array."""
        return self.cam8t(16, 256)

    def state_match_cam_32(self) -> MacroModel:
        """The logical 32x256 CAM of 32-bit mode (both sub-arrays)."""
        return self.cam8t(32, 256)

    def local_switch(self) -> MacroModel:
        """CAMA's 128x128 RRCB."""
        return self.sram8t(128, 128)

    def global_switch(self) -> MacroModel:
        return self.sram8t(256, 256)

    def eap_rcb(self) -> MacroModel:
        """eAP's 96x96 reduced crossbar (fitted, the paper gives no number)."""
        return self.sram8t(96, 96)

    def encoder_sram(self) -> MacroModel:
        """CAMA's 256x32 input-encoder SRAM."""
        return self.sram6t(256, 32)

    def ca_state_match(self) -> MacroModel:
        return self.sram6t(256, 256)

    def impala_state_match_bank(self) -> MacroModel:
        """One of Impala's two 16x256 banks (accessed together)."""
        return self.sram6t(16, 256)

    def eap_state_match(self) -> MacroModel:
        return self.sram8t(256, 256)

    # -- wire model --------------------------------------------------------
    def global_wire_delay_ps(self, state_match_area_um2: float) -> float:
        """Global-switch wire delay, linear in state-matching array area
        and anchored at CA's 99 ps (reproduces Table IV's 26.1 / 48.69 /
        121 ps for CAMA / Impala / eAP)."""
        ca_area = self.ca_state_match().area_um2
        return CA_GLOBAL_WIRE_DELAY_PS * state_match_area_um2 / ca_area

    def global_wire_energy_pj(self, state_match_area_um2: float) -> float:
        ca_area = self.ca_state_match().area_um2
        return CA_GLOBAL_WIRE_ENERGY_PJ * state_match_area_um2 / ca_area


def selective_precharge_energy(
    full_access_pj: float, enabled_entries: float, total_entries: int = 256
) -> float:
    """CAMA-E's CAM access energy for a given number of enabled columns.

    Linear between the published floor (2.67 pJ near zero enabled) and
    the full access (16.78 pJ at 256/256 for the 16x256 CAM).
    """
    if total_entries <= 0:
        raise ModelError("total_entries must be positive")
    fraction = min(max(enabled_entries / total_entries, 0.0), 1.0)
    return CAM_SELECTIVE_FLOOR_PJ + (full_access_pj - CAM_SELECTIVE_FLOOR_PJ) * fraction
