"""Multi-stride energy comparison: 2-stride CAMA vs 4-stride Impala (Fig 13).

Both process 16 input bits per cycle.  2-stride CAMA widens its
state-matching CAM to 64x256 (one access, 22 pJ full precharge, with
CAMA-E keeping selective precharge) and its local switch to 256x256;
4-stride Impala needs four 16x256 6T banks (61.2 pJ) per partition —
the doubled-again periphery that drives the paper's 2.18x / 3.77x
energy gap.

Activity comes from simulating the exact 2-strided automaton
(:func:`repro.automata.striding.stride2`).  The 4-stride Impala
automaton is the nibble decomposition of the 2-strided one; we count
its states exactly (rectangle decomposition per half) but reuse the
2-stride activity fractions, scaled by the partition-count ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.circuits import CircuitLibrary, selective_precharge_energy
from repro.arch.energy import switch_access_energy
from repro.automata.bitsplit import rectangle_decomposition
from repro.automata.nfa import Automaton
from repro.automata.striding import StridedAutomaton, pad_input, stride2
from repro.sim.engine import StridedEngine
from repro.sim.trace import PartitionAssignment

#: bytes consumed per cycle by both 16-bit designs
BYTES_PER_CYCLE = 2
PARTITION_CAPACITY = 256


@dataclass(frozen=True)
class MultiStrideResult:
    """Energy per input byte (nJ) for the three 16-bit designs."""

    benchmark: str
    strided_states: int
    impala4_states: int
    cama2_partitions: int
    impala4_partitions: int
    energy_nj_per_byte: dict[str, float]

    def ratio_impala_over(self, cama_variant: str) -> float:
        return (
            self.energy_nj_per_byte["4-stride Impala"]
            / self.energy_nj_per_byte[cama_variant]
        )


def strided_components(strided: StridedAutomaton) -> list[list[int]]:
    """Weakly connected components of a strided automaton."""
    n = len(strided)
    neighbors: list[set[int]] = [set() for _ in range(n)]
    for u, v in strided.transitions():
        neighbors[u].add(v)
        neighbors[v].add(u)
    seen = [False] * n
    components = []
    for root in range(n):
        if seen[root]:
            continue
        seen[root] = True
        stack, comp = [root], [root]
        while stack:
            u = stack.pop()
            for v in neighbors[u]:
                if not seen[v]:
                    seen[v] = True
                    comp.append(v)
                    stack.append(v)
        components.append(sorted(comp))
    components.sort(key=len, reverse=True)
    return components


def strided_entry_weights(strided: StridedAutomaton) -> np.ndarray:
    """CAM entries per strided state on the 64x256 2-stride CAM.

    A 16-bit product class C1 x C2 stores the concatenation of one
    entry per half; a half needing n entries multiplies the column
    count, and a universe half is a single all-don't-care half-pattern.
    """
    from repro.automata.symbols import SymbolClass
    from repro.core.encoding.negation import encode_state_class
    from repro.core.encoding.selection import select_encoding

    universe = SymbolClass.universe()
    halves = [
        half
        for ste in strided.states
        for half in (ste.product.first, ste.product.second)
        if half != universe
    ]
    if not halves:
        return np.ones(len(strided), dtype=np.float64)
    choice = select_encoding(halves)
    cache: dict[int, int] = {}

    def entries(half: SymbolClass) -> int:
        if half == universe:
            return 1
        if half.mask not in cache:
            cache[half.mask] = encode_state_class(
                choice.encoding, half
            ).num_entries
        return cache[half.mask]

    return np.array(
        [
            entries(ste.product.first) * entries(ste.product.second)
            for ste in strided.states
        ],
        dtype=np.float64,
    )


def strided_placement(strided: StridedAutomaton) -> PartitionAssignment:
    """Greedy CC packing of a strided automaton into 256-STE partitions."""
    n = len(strided)
    partition_of = np.full(n, -1, dtype=np.int64)
    fill: list[int] = []
    for component in strided_components(strided):
        for start in range(0, len(component), PARTITION_CAPACITY):
            chunk = component[start : start + PARTITION_CAPACITY]
            target = None
            for i, used in enumerate(fill):
                if used + len(chunk) <= PARTITION_CAPACITY:
                    target = i
                    break
            if target is None:
                fill.append(0)
                target = len(fill) - 1
            for s in chunk:
                partition_of[s] = target
            fill[target] += len(chunk)
    return PartitionAssignment(
        partition_of=partition_of,
        num_partitions=max(len(fill), 1),
        weights=strided_entry_weights(strided),
    )


def impala4_state_count(strided: StridedAutomaton) -> int:
    """States of the 4-stride Impala automaton: each 16-bit product
    class decomposes each 8-bit half into hi/lo nibble rectangles."""
    total = 0
    for ste in strided.states:
        for half in (ste.product.first, ste.product.second):
            rects = len(rectangle_decomposition(half))
            total += 2 * rects  # one hi + one lo STE per rectangle
    return total


def multistride_energy(
    automaton: Automaton,
    data: bytes,
    lib: CircuitLibrary | None = None,
) -> MultiStrideResult:
    """Fig 13's three bars for one benchmark."""
    lib = lib or CircuitLibrary()
    strided = stride2(automaton)
    placement = strided_placement(strided)
    engine = StridedEngine(strided)
    stats = engine.run(pad_input(data), placement=placement).stats

    cam64 = lib.cam8t(64, 256)
    sw = lib.global_switch()  # 2-stride CAMA local switch: 256x256
    bank = lib.impala_state_match_bank()

    cycles = max(stats.num_cycles, 1)
    enabled_partition_cycles = float(stats.partition_enabled_cycles.sum())
    enabled_entries = float(stats.partition_enabled_weight_sum.sum())

    # local switch energy, shared shape across all three designs
    local = 0.0
    for i in range(stats.num_partitions):
        accesses = float(stats.partition_active_cycles[i])
        if not accesses:
            continue
        avg_rows = stats.partition_active_states_sum[i] / accesses
        local += accesses * switch_access_energy(sw, avg_rows, PARTITION_CAPACITY)

    # 2-stride CAMA-T: full 64x256 access per enabled partition
    cama_t = enabled_partition_cycles * cam64.energy_pj + local
    # 2-stride CAMA-E: selective precharge on enabled entries
    floor = selective_precharge_energy(cam64.energy_pj, 0.0)
    slope = (cam64.energy_pj - floor) / 256.0
    cama_e = enabled_partition_cycles * floor + slope * enabled_entries + local

    # 4-stride Impala: four 16x256 banks per access (61.2 pJ).  The hot
    # partitions hold the same components as CAMA's, so the enabled
    # count carries over; the larger nibble-automaton only grows the
    # *provisioned* partition count (reported below), not the activity.
    n4 = impala4_state_count(strided)
    impala_partitions = max(1, -(-n4 // PARTITION_CAPACITY))
    impala = enabled_partition_cycles * (4 * bank.energy_pj) + local

    to_nj_per_byte = 1.0 / (cycles * BYTES_PER_CYCLE * 1000.0)
    return MultiStrideResult(
        benchmark=automaton.name,
        strided_states=len(strided),
        impala4_states=n4,
        cama2_partitions=stats.num_partitions,
        impala4_partitions=impala_partitions,
        energy_nj_per_byte={
            "2-stride CAMA-E": cama_e * to_nj_per_byte,
            "2-stride CAMA-T": cama_t * to_nj_per_byte,
            "4-stride Impala": impala * to_nj_per_byte,
        },
    )
