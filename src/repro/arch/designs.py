"""Per-design architecture models: CAMA-E/T, CA, 2-stride Impala, eAP.

Each ``build_*`` function places an automaton onto its design and
returns a :class:`DesignBuild` carrying (a) the provisioned hardware —
area and leakage, Fig. 10's quantity, (b) the placement the simulator
uses to collect activity, and (c) an energy function turning that
activity into Fig. 11/12's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.arch.baselines import BaselineMapping, map_baseline
from repro.arch.circuits import (
    CircuitLibrary,
    selective_precharge_energy,
)
from repro.arch.energy import (
    EnergyBreakdown,
    require_partition_stats,
    switch_access_energy,
)
from repro.arch.timing import (
    DesignTiming,
    ca_timing,
    cama_timing,
    eap_timing,
    impala_timing,
)
from repro.automata.bitsplit import bitsplit
from repro.automata.nfa import Automaton
from repro.core.compiler import CamaCompiler, CamaProgram
from repro.core.rrcb import CAMA_KDIA, EAP_KDIA
from repro.errors import ModelError
from repro.sim.trace import PartitionAssignment, TraceStats


@dataclass
class DesignBuild:
    """One design instantiated for one automaton."""

    design: str
    automaton_name: str
    timing: DesignTiming
    placement: PartitionAssignment
    area_um2: float
    leakage_w: float
    #: resource counts for reporting (switches, tiles, partitions, ...)
    counts: dict
    #: turns a partition-resolved TraceStats into an energy breakdown
    energy_fn: Callable[[TraceStats], EnergyBreakdown]

    @property
    def area_mm2(self) -> float:
        return self.area_um2 / 1e6

    def energy(self, stats: TraceStats) -> EnergyBreakdown:
        require_partition_stats(stats)
        return self.energy_fn(stats)

    def power_w(self, stats: TraceStats) -> float:
        """Dynamic + leakage power at the operated frequency."""
        dynamic = (
            self.energy(stats).per_cycle_pj()
            * 1e-12
            * self.timing.freq_operated_ghz
            * 1e9
        )
        return dynamic + self.leakage_w

    def compute_density_gbps_mm2(self) -> float:
        return self.timing.throughput_gbps() / self.area_mm2


# -- CAMA -------------------------------------------------------------------
def build_cama(
    automaton: Automaton,
    variant: str = "E",
    lib: CircuitLibrary | None = None,
    compiler: CamaCompiler | None = None,
    program: CamaProgram | None = None,
) -> DesignBuild:
    """CAMA-E (selective precharge) or CAMA-T (pipelined, full precharge).

    Both variants share the mapping and therefore the area; they differ
    in frequency and in the state-matching energy model.
    """
    lib = lib or CircuitLibrary()
    if program is None:
        compiler = compiler or CamaCompiler()
        program = compiler.compile(automaton)
    mapping = program.mapping

    cam = lib.state_match_cam()
    cam32 = lib.state_match_cam_32()
    switch = lib.local_switch()
    gsw = lib.global_switch()
    encoder = lib.encoder_sram()

    tile_area = 2 * cam.area_um2 + 2 * switch.area_um2
    area = (
        mapping.num_tiles * tile_area
        + mapping.num_global_switches * gsw.area_um2
        + encoder.area_um2
    )
    tile_leak = 2 * cam.leakage_ua + 2 * switch.leakage_ua
    leakage_ua = (
        mapping.num_tiles * tile_leak
        + mapping.num_global_switches * gsw.leakage_ua
        + encoder.leakage_ua
    )

    unit_of_switch, unit_modes = mapping.cam_units()
    unit_full_pj = np.array(
        [
            cam32.energy_pj if mode == "mode32" else cam.energy_pj
            for mode in unit_modes
        ]
    )
    # switch-level placement drives the simulation; CAM units aggregate it
    placement = mapping.placement(unit="switch")
    switch_to_unit = np.array(
        [unit_of_switch[s.index] for s in mapping.switches], dtype=np.int64
    )
    num_units = len(unit_modes)
    wire_pj = lib.global_wire_energy_pj(cam.area_um2)
    selective = variant == "E"

    def energy_fn(stats: TraceStats) -> EnergyBreakdown:
        # aggregate switch stats to CAM units
        unit_enabled_cycles = np.zeros(num_units, dtype=np.float64)
        unit_weight_sum = np.zeros(num_units, dtype=np.float64)
        np.maximum.at(
            unit_enabled_cycles,
            switch_to_unit,
            stats.partition_enabled_cycles.astype(np.float64),
        )
        np.add.at(
            unit_weight_sum, switch_to_unit, stats.partition_enabled_weight_sum
        )
        if selective:
            floor = selective_precharge_energy(0.0, 0.0)  # = 2.67 pJ
            slope = (unit_full_pj - floor) / 256.0
            state_match = float(
                (unit_enabled_cycles * floor + slope * unit_weight_sum).sum()
            )
        else:
            state_match = float((unit_enabled_cycles * unit_full_pj).sum())

        local = 0.0
        for i, plan in enumerate(mapping.switches):
            accesses = float(stats.partition_active_cycles[i])
            if not accesses:
                continue
            avg_rows = stats.partition_active_states_sum[i] / accesses
            local += accesses * switch_access_energy(
                switch, avg_rows, plan.capacity_states
            )
        global_accesses = float(stats.global_source_partitions_sum)
        global_pj = global_accesses * gsw.energy_pj
        wire = global_accesses * wire_pj
        enc = stats.num_cycles * encoder.energy_pj
        return EnergyBreakdown(
            state_match_pj=state_match,
            local_switch_pj=local,
            global_switch_pj=global_pj,
            wire_pj=wire,
            encoder_pj=enc,
            num_cycles=stats.num_cycles,
        )

    return DesignBuild(
        design=f"CAMA-{variant}",
        automaton_name=automaton.name,
        timing=cama_timing(variant, lib),
        placement=placement,
        area_um2=area,
        leakage_w=leakage_ua * 1e-6 * 0.9,
        counts={
            "tiles": mapping.num_tiles,
            "rcb_switches": mapping.num_rcb_switches,
            "fcb_switches": mapping.num_fcb_switches,
            "global_switches": mapping.num_global_switches,
            "cam_entries": mapping.total_entries,
            "code_length": mapping.code_length,
        },
        energy_fn=energy_fn,
    )


# -- shared baseline energy closure ------------------------------------------
def _baseline_energy_fn(
    sm_access_pj: float,
    switch_macros: list,
    gsw_energy_pj: float,
    wire_pj: float,
    positions: int = 256,
):
    def energy_fn(stats: TraceStats) -> EnergyBreakdown:
        state_match = float(stats.partition_enabled_cycles.sum()) * sm_access_pj
        local = 0.0
        for i, macro in enumerate(switch_macros):
            accesses = float(stats.partition_active_cycles[i])
            if not accesses:
                continue
            avg_rows = stats.partition_active_states_sum[i] / accesses
            local += accesses * switch_access_energy(macro, avg_rows, positions)
        global_accesses = float(stats.global_source_partitions_sum)
        return EnergyBreakdown(
            state_match_pj=state_match,
            local_switch_pj=local,
            global_switch_pj=global_accesses * gsw_energy_pj,
            wire_pj=global_accesses * wire_pj,
            encoder_pj=0.0,
            num_cycles=stats.num_cycles,
        )

    return energy_fn


# -- Cache Automaton ----------------------------------------------------------
def build_ca(
    automaton: Automaton,
    lib: CircuitLibrary | None = None,
    mapping: BaselineMapping | None = None,
) -> DesignBuild:
    """CA: 256x256 6T one-hot matching + 256x256 8T full-crossbar switch."""
    lib = lib or CircuitLibrary()
    mapping = mapping or map_baseline(automaton, kdia=EAP_KDIA)
    sm = lib.ca_state_match()
    sw = lib.global_switch()  # CA's local FCB is also a 256x256 8T array
    gsw = lib.global_switch()
    n_parts = mapping.num_partitions
    area = n_parts * (sm.area_um2 + sw.area_um2) + (
        mapping.num_global_switches * gsw.area_um2
    )
    leak = n_parts * (sm.leakage_ua + sw.leakage_ua) + (
        mapping.num_global_switches * gsw.leakage_ua
    )
    return DesignBuild(
        design="CA",
        automaton_name=automaton.name,
        timing=ca_timing(lib),
        placement=mapping.placement(),
        area_um2=area,
        leakage_w=leak * 1e-6 * 0.9,
        counts={
            "partitions": n_parts,
            "global_switches": mapping.num_global_switches,
        },
        energy_fn=_baseline_energy_fn(
            sm.energy_pj,
            [sw] * n_parts,
            gsw.energy_pj,
            lib.global_wire_energy_pj(sm.area_um2),
        ),
    )


# -- 2-stride Impala -----------------------------------------------------------
def build_impala(
    automaton: Automaton,
    lib: CircuitLibrary | None = None,
) -> DesignBuild:
    """Impala: the 4-bit bit-split automaton on two 16x256 6T banks.

    Both banks are read every cycle (one per nibble), so the
    state-matching access costs 2 x 15.3 pJ per enabled partition —
    the doubled periphery the paper identifies as Impala's energy
    weakness.  Activity is measured on the original automaton with
    states projected onto the partitions of their hi-nibble STEs.
    """
    lib = lib or CircuitLibrary()
    split = bitsplit(automaton)
    # an Impala partition holds 256 hi-nibble STEs in bank 0 plus 256
    # lo-nibble STEs in bank 1, so its bit-split capacity is 512
    bs_mapping = map_baseline(split.automaton, capacity=512, kdia=EAP_KDIA)
    # project: original state -> partition of its first hi-nibble STE
    partition_of = np.array(
        [
            bs_mapping.state_partition[split.hi_states[s][0]]
            for s in range(len(automaton))
        ],
        dtype=np.int64,
    )
    placement = PartitionAssignment(
        partition_of=partition_of, num_partitions=bs_mapping.num_partitions
    )
    bank = lib.impala_state_match_bank()
    sw = lib.global_switch()
    gsw = lib.global_switch()
    n_parts = bs_mapping.num_partitions
    area = n_parts * (2 * bank.area_um2 + sw.area_um2) + (
        bs_mapping.num_global_switches * gsw.area_um2
    )
    leak = n_parts * (2 * bank.leakage_ua + sw.leakage_ua) + (
        bs_mapping.num_global_switches * gsw.leakage_ua
    )
    return DesignBuild(
        design="2-stride Impala",
        automaton_name=automaton.name,
        timing=impala_timing(lib),
        placement=placement,
        area_um2=area,
        leakage_w=leak * 1e-6 * 0.9,
        counts={
            "partitions": n_parts,
            "bitsplit_states": len(split.automaton),
            "global_switches": bs_mapping.num_global_switches,
        },
        energy_fn=_baseline_energy_fn(
            2 * bank.energy_pj,
            [sw] * n_parts,
            gsw.energy_pj,
            lib.global_wire_energy_pj(2 * bank.area_um2),
        ),
    )


# -- eAP -----------------------------------------------------------------------
def build_eap(
    automaton: Automaton,
    lib: CircuitLibrary | None = None,
    mapping: BaselineMapping | None = None,
) -> DesignBuild:
    """eAP: 256x256 8T matching + 96x96 RCB; dense partitions reuse a
    state-matching array as FCB (costing an extra 8T bank)."""
    lib = lib or CircuitLibrary()
    mapping = mapping or map_baseline(automaton, kdia=EAP_KDIA)
    sm = lib.eap_state_match()
    rcb = lib.eap_rcb()
    gsw = lib.global_switch()
    n_parts = mapping.num_partitions
    n_fcb = mapping.num_fcb_partitions
    area = (
        n_parts * (sm.area_um2 + rcb.area_um2)
        + n_fcb * sm.area_um2  # SM reuse: extra bank for FCB routing
        + mapping.num_global_switches * gsw.area_um2
    )
    leak = (
        n_parts * (sm.leakage_ua + rcb.leakage_ua)
        + n_fcb * sm.leakage_ua
        + mapping.num_global_switches * gsw.leakage_ua
    )
    switch_macros = [
        rcb if p.band_ok else sm  # FCB partitions route in the 8T bank
        for p in mapping.partitions
    ]
    return DesignBuild(
        design="eAP",
        automaton_name=automaton.name,
        timing=eap_timing(lib),
        placement=mapping.placement(),
        area_um2=area,
        leakage_w=leak * 1e-6 * 0.9,
        counts={
            "partitions": n_parts,
            "fcb_partitions": n_fcb,
            "global_switches": mapping.num_global_switches,
        },
        energy_fn=_baseline_energy_fn(
            sm.energy_pj,
            switch_macros,
            gsw.energy_pj,
            lib.global_wire_energy_pj(sm.area_um2),
        ),
    )


ALL_DESIGNS = ("CAMA-E", "CAMA-T", "2-stride Impala", "eAP", "CA")


def build_design(
    design: str, automaton: Automaton, lib: CircuitLibrary | None = None
) -> DesignBuild:
    """Factory dispatching on the design name."""
    if design == "CAMA-E":
        return build_cama(automaton, "E", lib)
    if design == "CAMA-T":
        return build_cama(automaton, "T", lib)
    if design == "2-stride Impala":
        return build_impala(automaton, lib)
    if design == "eAP":
        return build_eap(automaton, lib)
    if design == "CA":
        return build_ca(automaton, lib)
    raise ModelError(f"unknown design {design!r}")
