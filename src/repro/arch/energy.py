"""Per-cycle energy accounting (paper §VIII.C).

The paper's model — which this module reproduces — charges, each cycle:

* one state-matching access per partition with >= 1 *enabled* state
  (pipelined designs cannot power-gate per cycle; CAMA-E additionally
  scales the access with the number of enabled CAM entries — selective
  precharge);
* one local-switch access per partition with >= 1 *active* state, with
  a cell component proportional to the active rows (the correction the
  paper applies to CA's and Impala's published models);
* one global-switch access (plus wire energy) per partition that owns
  an active state with a cross-partition successor;
* for CAMA, one input-encoder access per cycle.

All inputs come from a :class:`repro.sim.trace.TraceStats`; the output
is an :class:`EnergyBreakdown` in picojoules for the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.circuits import MacroModel
from repro.errors import ConfigError, ModelError
from repro.sim.trace import TraceStats


@dataclass(frozen=True)
class EnergyBreakdown:
    """Total energy of one run, split the way Fig. 12 reports it."""

    state_match_pj: float
    local_switch_pj: float
    global_switch_pj: float
    wire_pj: float
    encoder_pj: float
    num_cycles: int

    @property
    def switch_and_wire_pj(self) -> float:
        return self.local_switch_pj + self.global_switch_pj + self.wire_pj

    @property
    def total_pj(self) -> float:
        return self.state_match_pj + self.switch_and_wire_pj + self.encoder_pj

    def per_cycle_pj(self) -> float:
        return self.total_pj / self.num_cycles if self.num_cycles else 0.0

    def per_byte_nj(self, bytes_per_cycle: int = 1) -> float:
        if not self.num_cycles:
            return 0.0
        return self.total_pj / (self.num_cycles * bytes_per_cycle) / 1000.0

    def fractions(self) -> dict[str, float]:
        """Fig. 12's breakdown: state match / switch+wire / encoder."""
        total = self.total_pj
        if total <= 0:
            return {"state_match": 0.0, "switch_wire": 0.0, "encoder": 0.0}
        return {
            "state_match": self.state_match_pj / total,
            "switch_wire": self.switch_and_wire_pj / total,
            "encoder": self.encoder_pj / total,
        }


#: periphery share of an SRAM access; the paper states periphery is
#: ">= 80% of SRAM access energy" (§III.A), we use the midpoint of the
#: 80-90% range
SRAM_PERIPHERY_FRACTION = 0.85


def switch_access_energy(
    macro: MacroModel, active_rows: float, positions: int
) -> float:
    """Local-switch access energy with the active-row correction.

    The per-column periphery (precharge, sensing) is paid on every
    access; the cell/wordline component scales with the fraction of
    rows activated — the correction the paper applies to CA's and
    Impala's worst-case (all-rows) energy models.
    """
    if positions <= 0:
        raise ModelError("positions must be positive")
    periphery = SRAM_PERIPHERY_FRACTION * macro.energy_pj
    cells = macro.energy_pj - periphery
    fraction = min(max(active_rows / positions, 0.0), 1.0)
    return periphery + cells * fraction


def require_partition_stats(stats: TraceStats) -> None:
    """Reject statistics collected without a placement.

    A misconfigured accounting call — an engine run without
    ``placement=build.placement`` — is a configuration error on the
    caller's side, so this raises the typed
    :class:`~repro.errors.ConfigError` every config-validation path
    uses, not a model error.
    """
    if stats.partition_enabled_cycles is None:
        raise ConfigError(
            "energy accounting needs partition-resolved TraceStats; run "
            "the engine with placement=build.placement (or request the "
            "hardware ledger via ScanConfig(hardware_ledger=True), which "
            "does this for you)"
        )
