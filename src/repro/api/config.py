"""Typed configuration objects: the single source of option validation.

Four PRs grew four parallel entry points — ``Engine``/``CamaMachine``,
:class:`~repro.service.service.MatchingService`, the NDJSON server, and
the ``repro.compile`` pipeline — each re-declaring the same knobs as
loose keyword arguments.  This module collapses them into two frozen
dataclasses:

:class:`CompileConfig`
    Everything that changes *what gets compiled* (optimize, stride,
    backend hint, encoding knobs).  It is the same object the staged
    pipeline has always threaded through its passes —
    :class:`~repro.compile.ir.PipelineOptions` is now an alias — so its
    :meth:`~CompileConfig.digest` keeps feeding
    ``ruleset_fingerprint(automaton, options)`` unchanged: config
    identity and artifact keys come from one place.

:class:`ScanConfig`
    Everything that changes *how compiled rulesets execute and are
    cached* (backend policy, sharding, workers, chunking, report caps,
    truncation policy, the artifact store, the multiprocessing start
    method).  The service, dispatcher, session, server protocol and CLI
    all consume it; per-call overrides merge onto it with
    :meth:`~ScanConfig.merged`.

Both validate in ``__post_init__`` (raising
:class:`~repro.errors.ConfigError`), round-trip through
``to_dict``/``from_dict`` (the wire-protocol and artifact-manifest
form), and have a stable :meth:`digest`.

Legacy keyword signatures across the code base keep working through
thin shims that construct these objects internally and emit a
:class:`DeprecationWarning` attributed to the *caller* — internal code
paths never hit the shims, which the CI deprecation gate enforces by
erroring on any ``DeprecationWarning`` attributed to a ``repro.*``
module.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, fields, replace
from pathlib import Path

from repro.errors import ConfigError
from repro.sim.backends.base import (
    DEFAULT_MAX_KEPT_REPORTS,
    TRUNCATION_POLICIES,
)

#: default streaming granularity (bytes per run_chunk call) — canonical
#: definition; :mod:`repro.service.sharding` re-exports it
DEFAULT_CHUNK_SIZE = 64 * 1024

#: default max compiled rulesets resident in the in-memory LRU —
#: canonical definition; :mod:`repro.service.ruleset` re-exports it
DEFAULT_CACHE_CAPACITY = 32

#: strides the compilation pipeline knows how to build — canonical
#: definition; :mod:`repro.compile.ir` re-exports it
SUPPORTED_STRIDES = (1, 2)

#: multiprocessing start methods a :class:`ScanConfig` accepts (None =
#: platform default); availability is checked at pool creation, not here
MP_START_METHODS = (None, "fork", "spawn", "forkserver")


def warn_legacy_kwargs(api: str, names, *, stacklevel: int = 3) -> None:
    """Emit the deprecation warning for a legacy keyword call site.

    ``stacklevel`` must attribute the warning to the *caller* of the
    shimmed signature: the CI deprecation gate errors on warnings
    attributed to ``repro.*`` modules, so an internal code path that
    regresses onto a shim fails loudly while user code merely warns.
    """
    joined = ", ".join(sorted(names))
    warnings.warn(
        f"{api}({joined}=...) keyword configuration is deprecated; "
        f"pass a typed config object instead "
        f"(repro.api.CompileConfig / repro.api.ScanConfig)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def resolve_legacy_config(
    api: str,
    config,
    legacy: dict,
    *,
    stacklevel: int = 4,
):
    """The shared deprecation shim behind every rewired constructor.

    ``legacy`` maps :class:`ScanConfig` field names to the loose-kwarg
    values the caller passed (None = not passed; ``max_reports`` is
    displayed as ``default_max_reports`` where that was the old kwarg
    name).  Returns ``config`` untouched when no legacy kwarg was used;
    otherwise warns (attributed ``stacklevel`` frames up — the caller
    of the shimmed constructor) and builds the config from the kwargs.
    Mixing both forms is a :class:`~repro.errors.ConfigError`.
    """
    legacy = {k: v for k, v in legacy.items() if v is not None}
    if not legacy:
        return config
    if config is not None:
        raise ConfigError(
            "pass either a ScanConfig or loose keywords, not both"
        )
    shown = {
        "default_max_reports" if k == "_default_max_reports" else k
        for k in legacy
    }
    warn_legacy_kwargs(api, shown, stacklevel=stacklevel)
    return ScanConfig(
        **{
            ("max_reports" if k == "_default_max_reports" else k): v
            for k, v in legacy.items()
        }
    )


def _require_int(name: str, value, *, minimum: int) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(
            f"{name} must be an int, got {type(value).__name__}"
        )
    if value < minimum:
        raise ConfigError(f"{name} must be >= {minimum}, got {value}")


def _canonical_digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class CompileConfig:
    """Configuration of one compilation: what the pipeline builds.

    Every field is *pipeline-relevant*: it changes the compiled output,
    so it participates in :meth:`digest` and therefore in artifact keys
    (see ``ruleset_fingerprint(automaton, options)``).

    Args:
        optimize: run the VASim-style optimization pass (dead-state
            removal + prefix merging).  Off by default — the service
            layer must execute rulesets exactly as given, since
            optimization renumbers states and thus report ids.
        stride: temporal stride (1 or 2).  Stride 2 builds the
            2-strided automaton and a :class:`~repro.sim.engine.
            StridedEngine`; the CAMA encoding/mapping passes apply only
            at stride 1.
        backend: execution-backend *hint* for the kernel-prebuild pass
            ("sparse" / "bitparallel" / "native" / "auto"), or None to
            skip kernel prebuild (program-only compilations).
        allow_negation: apply negation optimization per state.
        clustered: apply frequency-first symbol clustering.
        fixed_32bit: bypass selection and use the fixed 32-bit
            One-Zero-Prefix baseline of Table II.
    """

    optimize: bool = False
    stride: int = 1
    backend: str | None = "sparse"
    allow_negation: bool = True
    clustered: bool = True
    fixed_32bit: bool = False

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "CompileConfig":
        """Check every field; kept as a method for legacy call sites
        (validation already ran in ``__post_init__``)."""
        from repro.sim.backends import BACKEND_NAMES

        if self.stride not in SUPPORTED_STRIDES:
            raise ConfigError(
                f"unsupported stride {self.stride}; "
                f"supported: {SUPPORTED_STRIDES}"
            )
        if self.backend is not None and self.backend not in BACKEND_NAMES:
            raise ConfigError(
                f"unknown execution backend {self.backend!r}; "
                f"known: {', '.join(BACKEND_NAMES)}"
            )
        return self

    def replace(self, **changes) -> "CompileConfig":
        return replace(self, **changes)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "CompileConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown pipeline options: {', '.join(sorted(unknown))}"
            )
        return cls(**data)

    def digest(self) -> str:
        """Stable hex digest of the option set (keys artifact caches)."""
        return _canonical_digest(self.to_dict())


@dataclass(frozen=True)
class ScanConfig:
    """Configuration of scan execution: how compiled rulesets run.

    One object carries every knob the service stack used to re-declare
    per signature; :class:`~repro.service.service.MatchingService`,
    :class:`~repro.service.sharding.Dispatcher`,
    :class:`~repro.service.session.Session`, the server protocol and
    the CLI all consume it.

    Args:
        backend: execution backend policy — ``"sparse"``,
            ``"bitparallel"``, ``"native"`` (compiled C loop, degrades
            to bitparallel when no compiled library is loadable),
            ``"auto"`` (resolves per shard), or an
            :class:`~repro.sim.backends.ExecutionBackend` instance
            (not serializable: :meth:`to_dict` rejects it).
        num_shards: shards per ruleset (whole connected components,
            balanced by state count).
        workers: processes for one-shot scans; 1 = serial.
        chunk_size: streaming granularity in bytes.
        cache_capacity: max compiled rulesets resident in the LRU.
        max_reports: kept-reports cap for scans and sessions that do
            not pass their own explicit cap.
        on_truncation: reaction when the *default* cap truncates
            recording: ``"warn"``, ``"error"``, or ``"ignore"``.
        artifact_store: optional persistent compiled-artifact cache (an
            :class:`~repro.compile.store.ArtifactStore` or a directory
            path).
        mp_start_method: multiprocessing start method for sharded
            worker pools (None = platform default).
        hardware_ledger: attach the modeled-hardware ledger (CAMA
            energy breakdown, cycle latency, tile occupancy — see
            :mod:`repro.telemetry.ledger`) to every scan result and
            session.  Costs a reference side-simulation per scan.
        ledger_design: which architecture model prices the ledger
            (any :data:`repro.arch.designs.ALL_DESIGNS` name).
        trace: record a per-scan span tree (scan -> shards -> chunks,
            compile passes) and carry its ``trace_id`` through results
            and protocol frames.
        batch_max_rows: max stream rows coalesced into one batched
            kernel step (``scan_many`` groups, and the server's batch
            scheduler flushes with reason ``rows_full`` at this bound).
            1 disables batching entirely — every stream steps alone.
        batch_max_delay_ms: how long the server's batch scheduler may
            hold a pending chunk waiting for co-batchable work before
            flushing with reason ``max_delay``.  Bounds the latency
            cost of batching; irrelevant to the synchronous
            ``scan_many`` path, which never waits.
    """

    backend: object = "auto"
    num_shards: int = 1
    workers: int = 1
    chunk_size: int = DEFAULT_CHUNK_SIZE
    cache_capacity: int = DEFAULT_CACHE_CAPACITY
    max_reports: int = DEFAULT_MAX_KEPT_REPORTS
    on_truncation: str = "warn"
    artifact_store: object = None
    mp_start_method: str | None = None
    hardware_ledger: bool = False
    ledger_design: str = "CAMA-E"
    trace: bool = False
    batch_max_rows: int = 64
    batch_max_delay_ms: float = 2.0

    def __post_init__(self) -> None:
        from repro.sim.backends import BACKEND_NAMES, ExecutionBackend

        if isinstance(self.backend, str):
            if self.backend not in BACKEND_NAMES:
                raise ConfigError(
                    f"unknown execution backend {self.backend!r}; "
                    f"known: {', '.join(BACKEND_NAMES)}"
                )
        elif not isinstance(self.backend, ExecutionBackend):
            raise ConfigError(
                f"not an execution backend: {self.backend!r} (expected a "
                f"name or an object with .name and .compile)"
            )
        _require_int("num_shards", self.num_shards, minimum=1)
        _require_int("workers", self.workers, minimum=1)
        _require_int("chunk_size", self.chunk_size, minimum=1)
        _require_int("cache_capacity", self.cache_capacity, minimum=1)
        _require_int("max_reports", self.max_reports, minimum=0)
        if self.on_truncation not in TRUNCATION_POLICIES:
            raise ConfigError(
                f"unknown truncation policy {self.on_truncation!r}; "
                f"expected one of {', '.join(TRUNCATION_POLICIES)}"
            )
        if self.mp_start_method not in MP_START_METHODS:
            known = ", ".join(str(m) for m in MP_START_METHODS)
            raise ConfigError(
                f"unknown mp_start_method {self.mp_start_method!r}; "
                f"expected one of {known}"
            )
        _require_int("batch_max_rows", self.batch_max_rows, minimum=1)
        if isinstance(self.batch_max_delay_ms, bool) or not isinstance(
            self.batch_max_delay_ms, (int, float)
        ):
            raise ConfigError(
                f"batch_max_delay_ms must be a number, got "
                f"{type(self.batch_max_delay_ms).__name__}"
            )
        if self.batch_max_delay_ms < 0:
            raise ConfigError(
                f"batch_max_delay_ms must be >= 0, got "
                f"{self.batch_max_delay_ms}"
            )
        for flag in ("hardware_ledger", "trace"):
            if not isinstance(getattr(self, flag), bool):
                raise ConfigError(
                    f"{flag} must be a bool, got "
                    f"{type(getattr(self, flag)).__name__}"
                )
        if self.hardware_ledger:
            # lazy: the design registry sits above the simulator and is
            # only needed when the ledger is actually requested
            from repro.telemetry.ledger import check_ledger_design

            check_ledger_design(self.ledger_design)
        elif not isinstance(self.ledger_design, str):
            raise ConfigError(
                f"ledger_design must be a design name, got "
                f"{type(self.ledger_design).__name__}"
            )

    # -- backend policy, resolved exactly once ----------------------------
    @property
    def engine_backend(self) -> object | None:
        """The backend to rebuild an adopted artifact's engine with.

        ``"auto"`` resolves to None — *defer to the backend the
        artifact recorded at compile time* — while a pinned backend
        passes through.  This is the one place the ``"auto"`` policy is
        rewritten; every consumer (service artifact registration, the
        facade) reads it from here instead of re-deriving it.
        """
        return None if self.backend == "auto" else self.backend

    def replace(self, **changes) -> "ScanConfig":
        return replace(self, **changes)

    def merged(self, **overrides) -> "ScanConfig":
        """This config with non-None per-call overrides applied.

        The merge pattern behind ``scan(..., chunk_size=..., )``-style
        call-level options: ``None`` means "keep the configured value".
        """
        changes = {k: v for k, v in overrides.items() if v is not None}
        return replace(self, **changes) if changes else self

    # -- serialization (wire protocol + manifests) ------------------------
    def to_dict(self) -> dict:
        """The JSON-serializable form used by wire frames and manifests.

        A backend *instance* has no stable serial form and is rejected;
        an attached store serializes as its directory path.
        """
        if not isinstance(self.backend, str):
            raise ConfigError(
                "a backend instance cannot be serialized; select the "
                "backend by registry name to put it in a config dict"
            )
        store = self.artifact_store
        if store is not None and not isinstance(store, (str, Path)):
            store = getattr(store, "root", None)
            if store is None:
                raise ConfigError(
                    "this artifact store cannot be serialized (no root "
                    "directory); pass a directory path instead"
                )
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        payload["artifact_store"] = None if store is None else str(store)
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "ScanConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown scan options: {', '.join(sorted(unknown))}"
            )
        return cls(**data)

    def digest(self) -> str:
        """Stable hex digest of the full option set.

        Round-trips unchanged through ``to_dict``/``from_dict`` — i.e.
        through a wire frame or an artifact manifest — which the
        protocol tests assert end to end.
        """
        return _canonical_digest(self.to_dict())


@dataclass(frozen=True)
class ClusterConfig:
    """Configuration of a cluster deployment: fleet shape + admission.

    Consumed by :meth:`repro.api.RulesetHandle.serve_cluster` (which
    spawns the node processes and the router) and by the ``repro
    route`` CLI.  Node-level execution options still come from
    :class:`ScanConfig` — this object only describes what sits *above*
    the nodes: how many there are, how rulesets replicate across them,
    how often the router probes liveness, and what each tenant may
    consume.

    Quota fields of ``None`` mean unlimited; any non-None one arms the
    router's admission control (see :mod:`repro.cluster.quotas`).

    Args:
        num_nodes: matching-server processes in the fleet.
        replication: nodes per ruleset; >= 2 enables mid-stream
            failover.
        health_interval_s: router liveness-probe period (dead nodes
            rejoin automatically when they answer again).
        node_timeout_s: per-request router→node round-trip budget; a
            node that is connected but hung exceeds it and fails over
            like a dead one (None = wait forever).
        tenant_bytes_per_s: sustained scan/feed bytes per tenant.
        tenant_requests_per_s: sustained scan/feed requests per tenant.
        tenant_max_sessions: concurrently open sessions per tenant.
        tenant_compile_cost: compile cost (pattern count) admitted per
            ``quota_window_s`` per tenant.
        quota_window_s: burst window of the rate quotas.
    """

    num_nodes: int = 2
    replication: int = 2
    health_interval_s: float = 2.0
    node_timeout_s: float | None = 60.0
    tenant_bytes_per_s: float | None = None
    tenant_requests_per_s: float | None = None
    tenant_max_sessions: int | None = None
    tenant_compile_cost: int | None = None
    quota_window_s: float = 10.0

    def __post_init__(self) -> None:
        _require_int("num_nodes", self.num_nodes, minimum=1)
        _require_int("replication", self.replication, minimum=1)
        if self.replication > self.num_nodes:
            raise ConfigError(
                f"replication ({self.replication}) cannot exceed "
                f"num_nodes ({self.num_nodes})"
            )
        if self.health_interval_s <= 0:
            raise ConfigError("health_interval_s must be > 0")
        if self.node_timeout_s is not None and self.node_timeout_s <= 0:
            raise ConfigError("node_timeout_s must be > 0 (or None)")
        if self.quota_window_s <= 0:
            raise ConfigError("quota_window_s must be > 0")

    def quotas(self):
        """The :class:`~repro.cluster.quotas.QuotaManager` these limits
        describe, or None when every quota field is unlimited."""
        from repro.cluster.quotas import QuotaManager, TenantQuota

        quota = TenantQuota(
            bytes_per_s=self.tenant_bytes_per_s,
            requests_per_s=self.tenant_requests_per_s,
            max_open_sessions=self.tenant_max_sessions,
            compile_cost_per_window=self.tenant_compile_cost,
            window_s=self.quota_window_s,
        )
        return None if quota.unlimited else QuotaManager(quota)

    def replace(self, **changes) -> "ClusterConfig":
        return replace(self, **changes)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown cluster options: {', '.join(sorted(unknown))}"
            )
        return cls(**data)

    def digest(self) -> str:
        """Stable hex digest of the full option set."""
        return _canonical_digest(self.to_dict())
