"""The fluent facade: one front door over compile, engine, service, server.

:class:`Ruleset` names *what to match* (regexes, ANML, MNRL, an
:class:`~repro.automata.nfa.Automaton`, or a precompiled artifact);
:meth:`Ruleset.compile` turns it into a :class:`RulesetHandle` under a
:class:`~repro.api.config.CompileConfig` /
:class:`~repro.api.config.ScanConfig` pair.  The handle exposes the
whole deployment surface::

    from repro.api import Ruleset, ScanConfig

    handle = Ruleset.from_regexes({"r1": "(a|b)e*cd+"}).compile(
        scan=ScanConfig(num_shards=4)
    )
    result = handle.scan(payload)                 # one-shot, cached
    batch = handle.scan_many({"a": data_a, "b": data_b})
    with handle.stream("tenant-a") as session:    # resumable stream
        session.feed(chunk1); session.feed(chunk2)
    handle.save("rules.npz")                      # compile once ...
    warm = Ruleset.from_artifact("rules.npz").compile()   # load anywhere
    handle.serve(port=8765)                       # ... or serve it

Everything underneath is the existing machinery —
:func:`repro.compile.pipeline.compile_ruleset`,
:class:`~repro.service.service.MatchingService`,
:class:`~repro.service.server.MatchingServer` — wired together through
the typed configs, so results are byte-identical to driving those
layers directly.
"""

from __future__ import annotations

from pathlib import Path

from repro.api.config import CompileConfig, ScanConfig
from repro.automata.nfa import Automaton
from repro.errors import ConfigError


class Ruleset:
    """A ruleset source, ready to compile.

    Build one with a ``from_*`` constructor, then call :meth:`compile`.
    The intermediate object is cheap — it holds the parsed automaton
    (or the loaded artifact) and nothing else.
    """

    def __init__(self, automaton: Automaton, *, artifact=None) -> None:
        self.automaton = automaton
        self._artifact = artifact

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_regexes(cls, rules, *, name: str = "ruleset") -> "Ruleset":
        """From a dict/list of regex patterns (dict keys become report
        codes)."""
        from repro.automata import compile_regex_set

        if not rules:
            raise ConfigError("cannot compile an empty regex rule set")
        return cls(compile_regex_set(rules, name=name))

    @classmethod
    def from_anml(cls, path) -> "Ruleset":
        """From an ANML (``.anml``/``.xml``) file."""
        from repro.automata import load_anml

        return cls(load_anml(path))

    @classmethod
    def from_mnrl(cls, path) -> "Ruleset":
        """From an MNRL (``.mnrl``/``.json``) file."""
        from repro.automata import load_mnrl

        return cls(load_mnrl(path))

    @classmethod
    def from_automaton(cls, automaton: Automaton) -> "Ruleset":
        """From an already built homogeneous NFA (validated here)."""
        automaton.validate()
        return cls(automaton)

    @classmethod
    def from_file(cls, path) -> "Ruleset":
        """From any supported ruleset file, dispatched on its suffix
        (ANML, MNRL, or a newline-separated regex list)."""
        from repro.compile import load_source

        return cls(load_source(path))

    @classmethod
    def from_artifact(cls, source) -> "Ruleset":
        """From a precompiled artifact — a
        :class:`~repro.compile.artifact.CompiledArtifact`, its raw
        ``.npz`` bytes, or a path to one.  Compiling this ruleset
        adopts the artifact's prebuilt tables instead of recompiling
        ("compile once, load anywhere")."""
        from repro.compile.artifact import CompiledArtifact

        if isinstance(source, (bytes, bytearray)):
            artifact = CompiledArtifact.from_bytes(bytes(source))
        elif isinstance(source, (str, Path)):
            artifact = CompiledArtifact.load(source)
        elif isinstance(source, CompiledArtifact):
            artifact = source
        else:
            raise ConfigError(
                f"cannot load a {type(source).__name__} as an artifact"
            )
        return cls(artifact.automaton(), artifact=artifact)

    # -- the one verb -----------------------------------------------------
    def compile(
        self,
        config: CompileConfig | None = None,
        *,
        scan: ScanConfig | None = None,
    ) -> "RulesetHandle":
        """Compile under ``config`` and bind scan behaviour to ``scan``.

        For an artifact-backed ruleset, an omitted (or matching)
        ``config`` adopts the artifact's prebuilt tables — no compile
        runs; a *different* ``config`` recompiles from the reconstructed
        automaton.  Otherwise the staged pipeline runs here, eagerly;
        with no explicit ``config`` the compile backend hint follows
        the scan backend policy and the compiled engine seeds the
        handle's service cache, so a first single-shard scan is warm.
        (With an explicitly *different* compile backend, or sharded
        scanning, the service compiles its own per-shard engines on
        first use — the same "when the configuration lines up" seeding
        rule as ``MatchingService.register_artifact``; the eager
        compile still backs ``save()``/``artifact()``.)
        """
        from repro.compile.pipeline import compile_ruleset

        scan = scan if scan is not None else ScanConfig()
        artifact = self._artifact
        if artifact is not None:
            if config is None or config == artifact.options:
                return RulesetHandle(
                    self.automaton,
                    artifact.options,
                    scan,
                    artifact=artifact,
                )
            artifact = None  # recompile under the requested config
        if config is None:
            backend = scan.backend if isinstance(scan.backend, str) else None
            config = CompileConfig(backend=backend)
        compiled = compile_ruleset(self.automaton, config)
        return RulesetHandle(
            compiled.automaton, config, scan, compiled=compiled
        )

    # -- editing -----------------------------------------------------------
    def update(
        self,
        *,
        add=None,
        remove=None,
        name: str | None = None,
    ) -> "Ruleset":
        """A new :class:`Ruleset` with ``add`` patterns merged in and
        ``remove`` report codes dropped (whole connected components).

        Pure: this ruleset is untouched.  Compiling the result through
        the same artifact store reuses every unchanged component's
        compiled artifact (see :mod:`repro.compile.incremental`).
        """
        from repro.compile.incremental import apply_update

        return Ruleset(
            apply_update(self.automaton, add=add, remove=remove, name=name)
        )


class RulesetHandle:
    """A compiled ruleset bound to its scan configuration.

    Holds the compiled product plus a lazily built
    :class:`~repro.service.service.MatchingService` (created on the
    first :meth:`scan` / :meth:`scan_many` / :meth:`stream` and seeded
    with the compiled engine or adopted artifact where the backend and
    sharding configuration lines up — see :meth:`Ruleset.compile`).
    Handles are context managers; leaving the ``with`` block releases
    the service's sessions and worker pools.
    """

    def __init__(
        self,
        automaton: Automaton,
        compile_config: CompileConfig,
        scan_config: ScanConfig,
        *,
        compiled=None,
        artifact=None,
    ) -> None:
        self.automaton = automaton
        self.compile_config = compile_config
        self.scan_config = scan_config
        self._compiled = compiled
        self._artifact = artifact
        self._service = None

    # -- identity ---------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """The ruleset's language fingerprint (the service cache key and
        the handle a server-side registration of these rules yields)."""
        from repro.compile.fingerprint import ruleset_fingerprint

        return ruleset_fingerprint(self.automaton)

    @property
    def key(self) -> str:
        """The artifact key: language fingerprint mixed with the
        compile-config digest (what :meth:`save` names the file after)."""
        from repro.compile.fingerprint import ruleset_fingerprint

        return ruleset_fingerprint(self.automaton, self.compile_config)

    # -- the matching surface ---------------------------------------------
    @property
    def service(self):
        """The lazily built matching service behind this handle."""
        if self._service is None:
            from repro.service.service import MatchingService

            service = MatchingService(self.scan_config)
            if self._artifact is not None:
                service.register_artifact(self._artifact)
            elif (
                self._compiled is not None
                and self._compiled.kernel is not None
                and isinstance(self.scan_config.backend, str)
                and self.compile_config.backend == self.scan_config.backend
                and self.compile_config.stride == 1
            ):
                # seed the eager compile into the service cache so a
                # single-shard scan skips recompilation entirely
                service.manager.seed_engine(
                    self.automaton,
                    self.scan_config.backend,
                    self._compiled.engine(),
                    fingerprint=self.fingerprint,
                )
            self._service = service
        return self._service

    def scan(
        self,
        data: bytes,
        *,
        chunk_size: int | None = None,
        max_reports: int | None = None,
        on_truncation: str | None = None,
    ):
        """Scan one complete stream; returns a
        :class:`~repro.service.service.ServiceResult`."""
        return self.service.scan(
            self.automaton,
            data,
            chunk_size=chunk_size,
            max_reports=max_reports,
            on_truncation=on_truncation,
        )

    def scan_many(
        self,
        streams: dict[str, bytes],
        *,
        chunk_size: int | None = None,
        max_reports: int | None = None,
        on_truncation: str | None = None,
    ):
        """Scan every named stream; returns ``{name: ServiceResult}``."""
        return self.service.scan_many(
            self.automaton,
            streams,
            chunk_size=chunk_size,
            max_reports=max_reports,
            on_truncation=on_truncation,
        )

    def update(
        self,
        *,
        add=None,
        remove=None,
        name: str | None = None,
    ):
        """Hot-swap this handle's rules to a new *version* in place.

        ``add`` merges new patterns (a ``{code: pattern}`` mapping or a
        pattern list), ``remove`` drops whole report codes.  The edit
        flows through the incremental compile path, so unchanged
        connected components reuse their cached artifacts; streams
        already open via :meth:`stream` finish on the version they
        opened against, while subsequent :meth:`scan` / :meth:`stream`
        calls bind the new one.  Returns the service's version record
        (``.version``, ``.fingerprint``, ``.reused_components``,
        ``.compiled_components``).
        """
        from repro.compile.incremental import apply_update

        new_name = name if name is not None else self.automaton.name
        updated = apply_update(
            self.automaton, add=add, remove=remove, name=new_name
        )
        record = self.service.update_ruleset(
            self.automaton, automaton=updated
        )
        self.automaton = record.automaton
        self._compiled = None
        self._artifact = None
        return record

    def stream(
        self,
        name: str,
        *,
        max_reports: int | None = None,
        on_truncation: str | None = None,
    ):
        """Open a named resumable stream (a
        :class:`~repro.service.session.Session`, usable as a context
        manager: leaving the ``with`` block closes the stream).
        ``max_reports`` / ``on_truncation`` default to the handle's
        :class:`ScanConfig` values."""
        return self.service.open_session(
            self.automaton,
            name,
            max_reports=max_reports,
            on_truncation=on_truncation,
        )

    # -- artifacts ---------------------------------------------------------
    def artifact(self):
        """The serializable compiled artifact of this handle (built on
        first use for pipeline-compiled handles)."""
        if self._artifact is None:
            from repro.compile.artifact import CompiledArtifact
            from repro.compile.pipeline import compile_ruleset

            compiled = self._compiled
            if compiled is None:
                compiled = compile_ruleset(self.automaton, self.compile_config)
                self._compiled = compiled
            self._artifact = CompiledArtifact.from_compiled(compiled)
        return self._artifact

    def save(self, path) -> Path:
        """Write the compiled artifact to ``path`` (a file or a
        directory, where it lands under its content-address key); any
        other process loads it with ``Ruleset.from_artifact(path)``."""
        return self.artifact().save(path)

    # -- deployment --------------------------------------------------------
    def serve(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 8765,
        background: bool = False,
        **server_kwargs,
    ):
        """Serve this handle's service over TCP (NDJSON frames).

        The ruleset is preloaded server-side, so remote clients can
        ``scan`` against :attr:`fingerprint` without registering first.
        Blocking by default (the CLI/`examples` shape); with
        ``background=True`` returns a started
        :class:`~repro.service.server.BackgroundServer` whose ``stop()``
        also closes this handle's service.  Extra keyword arguments
        (``max_frame_bytes``, ``executor_workers``, ...) pass through to
        :class:`~repro.service.server.MatchingServer`.
        """
        from repro.service.server import (
            BackgroundServer,
            MatchingServer,
            run_server,
        )

        server = MatchingServer(
            self.service, host=host, port=port, **server_kwargs
        )
        server.preload_ruleset(self.automaton)
        if background:
            return BackgroundServer(server).start()
        run_server(server)
        return None

    def serve_cluster(
        self,
        config=None,
        *,
        artifact_cache=None,
        router_port: int = 0,
        **fleet_kwargs,
    ):
        """Serve this ruleset from a local fleet behind a cluster router.

        Spawns ``config.num_nodes`` real server processes sharing
        ``artifact_cache`` (or this handle's configured store
        directory), fronts them with a
        :class:`~repro.cluster.router.ClusterRouter` enforcing the
        config's tenant quotas, and registers this ruleset fleet-wide —
        one compile on the placement primary, artifact loads on the
        replicas.  Returns the *started*
        :class:`~repro.cluster.fleet.LocalFleet`; clients connect a
        plain :class:`~repro.service.client.MatchingClient` to
        ``fleet.port`` and scan against :attr:`fingerprint`::

            fleet = handle.serve_cluster(ClusterConfig(num_nodes=2))
            try:
                client = MatchingClient(port=fleet.port)
                client.register(rules)   # cache hit: already placed
            finally:
                fleet.stop()
        """
        from repro.api.config import ClusterConfig
        from repro.cluster.fleet import LocalFleet
        from repro.service.client import MatchingClient

        if config is None:
            config = ClusterConfig()
        if artifact_cache is None:
            store = self.scan_config.artifact_store
            artifact_cache = getattr(store, "root", store)
        fleet = LocalFleet(
            num_nodes=config.num_nodes,
            artifact_cache=artifact_cache,
            replication=config.replication,
            quotas=config.quotas(),
            router_port=router_port,
            health_interval_s=config.health_interval_s,
            node_timeout_s=config.node_timeout_s,
            **fleet_kwargs,
        )
        fleet.start()
        try:
            # place the ruleset fleet-wide now, so clients can scan by
            # fingerprint immediately (mirrors serve()'s preload)
            from repro.automata.mnrl import dumps_mnrl

            with MatchingClient(port=fleet.port) as client:
                client.register(dumps_mnrl(self.automaton), kind="mnrl")
        except BaseException:
            fleet.stop()
            raise
        return fleet

    def close(self) -> None:
        """Release the underlying service (sessions, worker pools)."""
        if self._service is not None:
            self._service.close()

    def __enter__(self) -> "RulesetHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
