"""repro.api — the unified public API of the repro library.

One stable, typed front door over the four layers that grew their own
entry points — the compilation pipeline (:mod:`repro.compile`), the
engines (:mod:`repro.sim`), the matching service and the network server
(:mod:`repro.service`):

:class:`CompileConfig` / :class:`ScanConfig`
    Frozen, validated configuration objects — the single source of
    option validation for every layer, with ``to_dict``/``from_dict``
    for the wire protocol and artifact manifests and a stable
    ``digest()`` that feeds artifact keys.

:class:`Ruleset`
    The fluent facade::

        from repro.api import Ruleset, CompileConfig, ScanConfig

        rules = Ruleset.from_regexes({"r1": "(a|b)e*cd+", "r2": "abc"})
        handle = rules.compile(scan=ScanConfig(num_shards=4))
        result = handle.scan(payload)                # one-shot, cached
        with handle.stream("tenant-a") as session:   # resumable stream
            session.feed(chunk1); session.feed(chunk2)
        handle.save("rules.npz")                     # compile once ...
        warm = Ruleset.from_artifact("rules.npz").compile()  # load anywhere
        handle.serve(port=8765)                      # ... or serve it

Legacy keyword signatures (``MatchingService(num_shards=4)``,
``Dispatcher(a, num_shards=2)``, ...) keep working through deprecation
shims that build these configs internally and emit a
``DeprecationWarning``.
"""

from repro.api.config import (
    DEFAULT_CACHE_CAPACITY,
    DEFAULT_CHUNK_SIZE,
    MP_START_METHODS,
    SUPPORTED_STRIDES,
    ClusterConfig,
    CompileConfig,
    ScanConfig,
    warn_legacy_kwargs,
)
from repro.errors import ConfigError

__all__ = [
    "ClusterConfig",
    "CompileConfig",
    "ConfigError",
    "DEFAULT_CACHE_CAPACITY",
    "DEFAULT_CHUNK_SIZE",
    "MP_START_METHODS",
    "Ruleset",
    "RulesetHandle",
    "SUPPORTED_STRIDES",
    "ScanConfig",
    "warn_legacy_kwargs",
]

#: names served lazily to keep ``repro.api.config`` importable from the
#: lower layers (compile/service) without a circular import
_LAZY = ("Ruleset", "RulesetHandle")


def __getattr__(name: str):
    if name in _LAZY:
        from repro.api import ruleset

        return getattr(ruleset, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
