"""MNRL (MNCaRT Network Representation Language) reader/writer.

MNRL is the JSON automata interchange format from the MNCaRT ecosystem;
the paper's toolchain accepts "an MNRL/ANML file".  We support the
homogeneous-state (``hState``) node type, which is what ANMLZoo's MNRL
exports contain.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.automata.nfa import Automaton, StartKind
from repro.automata.symbols import SymbolClass
from repro.errors import AutomatonError, ParseError

_ENABLE_TO_KIND = {
    "onActivateIn": StartKind.NONE,
    "onStartAndActivateIn": StartKind.START_OF_DATA,
    "always": StartKind.ALL_INPUT,
    "onLast": StartKind.NONE,
}
_KIND_TO_ENABLE = {
    StartKind.NONE: "onActivateIn",
    StartKind.START_OF_DATA: "onStartAndActivateIn",
    StartKind.ALL_INPUT: "always",
}


def loads_mnrl(text: str, *, name: str | None = None) -> Automaton:
    """Parse an MNRL document from a string."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"malformed MNRL JSON: {exc}") from exc
    if not isinstance(doc, dict) or "nodes" not in doc:
        raise ParseError("MNRL document has no 'nodes' array")
    automaton = Automaton(name=name or doc.get("id", "mnrl"))
    id_to_index: dict[str, int] = {}
    edges: list[tuple[str, str]] = []
    for node in doc["nodes"]:
        node_type = node.get("type")
        if node_type != "hState":
            raise ParseError(
                f"unsupported MNRL node type {node_type!r} (only hState "
                f"homogeneous automata are supported)"
            )
        node_id = node.get("id")
        if node_id is None:
            raise ParseError("MNRL node without id")
        if node_id in id_to_index:
            raise ParseError(f"duplicate MNRL node id {node_id!r}")
        attributes = node.get("attributes", {})
        symbol_set = attributes.get("symbolSet")
        if symbol_set is None:
            raise ParseError(f"hState {node_id!r} has no symbolSet attribute")
        enable = node.get("enable", "onActivateIn")
        if enable not in _ENABLE_TO_KIND:
            raise ParseError(f"hState {node_id!r} has unknown enable {enable!r}")
        try:
            symbol_class = SymbolClass.parse(symbol_set)
        except AutomatonError as exc:
            raise ParseError(f"hState {node_id!r}: {exc}") from exc
        report_id = attributes.get("reportId")
        ste = automaton.add_state(
            symbol_class,
            start=_ENABLE_TO_KIND[enable],
            reporting=bool(node.get("report", False)),
            report_code=str(report_id) if report_id is not None else None,
            name=node_id,
        )
        id_to_index[node_id] = ste.ste_id
        for output in node.get("outputDefs", []):
            for activation in output.get("activate", []):
                target = activation.get("id")
                if target is None:
                    raise ParseError(f"hState {node_id!r}: activation without id")
                edges.append((node_id, target))
    for src, dst in edges:
        if dst not in id_to_index:
            raise ParseError(f"activation references unknown node {dst!r}")
        automaton.add_transition(id_to_index[src], id_to_index[dst])
    return automaton


def load_mnrl(path: str | Path) -> Automaton:
    """Load an MNRL file from disk."""
    path = Path(path)
    return loads_mnrl(path.read_text(), name=path.stem)


def dumps_mnrl(automaton: Automaton) -> str:
    """Serialize an automaton to an MNRL document string."""
    nodes = []
    for ste in automaton.states:
        node: dict = {
            "id": ste.label(),
            "type": "hState",
            "enable": _KIND_TO_ENABLE[ste.start],
            "report": ste.reporting,
            "attributes": {"symbolSet": ste.symbol_class.to_anml()},
            "inputDefs": [{"portId": "i", "width": 1}],
            "outputDefs": [
                {
                    "portId": "o",
                    "width": 1,
                    "activate": [
                        {"id": automaton.states[dst].label(), "portId": "i"}
                        for dst in sorted(automaton.successors(ste.ste_id))
                    ],
                }
            ],
        }
        if ste.reporting and ste.report_code is not None:
            node["attributes"]["reportId"] = ste.report_code
        nodes.append(node)
    return json.dumps({"id": automaton.name, "nodes": nodes}, indent=2)


def dump_mnrl(automaton: Automaton, path: str | Path) -> None:
    """Write an automaton to an MNRL file."""
    Path(path).write_text(dumps_mnrl(automaton))
