"""Structural analysis of homogeneous NFAs.

The mapper and the workload characterization both need the same three
analyses the paper relies on:

* *connected components* (CCs) — transitions never cross CCs, so the
  greedy mapper packs whole CCs into partitions;
* *BFS ordering* — laying each CC out in breadth-first order from its
  start states places most transitions near the diagonal of the local
  switch (the observation behind eAP's RCB and CAMA's RRCB);
* summary statistics (Table I's columns).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.automata.nfa import Automaton, StartKind


def connected_components(automaton: Automaton) -> list[list[int]]:
    """Weakly connected components, each sorted by state id.

    Components are returned largest-first, the order the greedy packer
    consumes them in.
    """
    n = len(automaton)
    neighbors: list[set[int]] = [set() for _ in range(n)]
    for u, v in automaton.transitions():
        neighbors[u].add(v)
        neighbors[v].add(u)
    seen = [False] * n
    components: list[list[int]] = []
    for root in range(n):
        if seen[root]:
            continue
        seen[root] = True
        component = [root]
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for v in neighbors[u]:
                if not seen[v]:
                    seen[v] = True
                    component.append(v)
                    queue.append(v)
        components.append(sorted(component))
    components.sort(key=len, reverse=True)
    return components


def balanced_shards(
    components: list[list[int]], num_shards: int
) -> list[list[int]]:
    """Pack connected components into at most ``num_shards`` groups.

    Transitions never cross components, so each group induces an
    independent sub-automaton that can be simulated in isolation — the
    property the sharded dispatcher in :mod:`repro.service` relies on.
    Greedy longest-processing-time packing: components largest-first,
    each into the currently lightest group.  Groups are returned with
    their state ids sorted; empty groups are dropped, so fewer than
    ``num_shards`` groups come back when there are fewer components.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    groups: list[list[int]] = [[] for _ in range(min(num_shards, len(components)))]
    if not groups:
        return []
    loads = [0] * len(groups)
    for component in sorted(components, key=len, reverse=True):
        lightest = loads.index(min(loads))
        groups[lightest].extend(component)
        loads[lightest] += len(component)
    return [sorted(group) for group in groups if group]


def balanced_component_groups(
    components: list[list[int]], num_shards: int
) -> list[list[int]]:
    """Pack components into groups, keeping component identity.

    The same greedy longest-processing-time packing as
    :func:`balanced_shards` — identical tie-breaking, so the union of
    each returned group equals the corresponding ``balanced_shards``
    group — but returning *component indices* instead of flattened
    state-id unions.  The incremental compiler needs the per-component
    structure to compose cached component artifacts block-by-block
    (:mod:`repro.compile.incremental`); flattening would erase which
    states belong to which cached artifact.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    groups: list[list[int]] = [
        [] for _ in range(min(num_shards, len(components)))
    ]
    if not groups:
        return []
    loads = [0] * len(groups)
    order = sorted(
        range(len(components)), key=lambda i: len(components[i]), reverse=True
    )
    for index in order:
        lightest = loads.index(min(loads))
        groups[lightest].append(index)
        loads[lightest] += len(components[index])
    return [group for group in groups if group]


def bfs_order(automaton: Automaton, component: list[int]) -> list[int]:
    """Breadth-first ordering of one component from its start states.

    States unreached by forward BFS (e.g. predecessors of a start state)
    are appended afterwards, preserving id order, so the result is always
    a permutation of ``component``.
    """
    in_component = set(component)
    order: list[int] = []
    seen: set[int] = set()
    roots = [
        s for s in component if automaton.states[s].start.value != "none"
    ] or component[:1]
    queue = deque()
    for root in roots:
        if root not in seen:
            seen.add(root)
            queue.append(root)
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in sorted(automaton.successors(u)):
            if v in in_component and v not in seen:
                seen.add(v)
                queue.append(v)
    for s in component:
        if s not in seen:
            order.append(s)
            seen.add(s)
    return order


def bandwidth_under_order(automaton: Automaton, order: list[int]) -> int:
    """Maximum |pos(u) - pos(v)| over transitions inside ``order``.

    This is the diagonal band width a reduced crossbar must provide to
    hold the component without falling back to a full crossbar.
    """
    position = {s: i for i, s in enumerate(order)}
    width = 0
    for u, v in automaton.transitions():
        if u in position and v in position:
            width = max(width, abs(position[u] - position[v]))
    return width


def _match_probabilities(automaton) -> np.ndarray:
    """Per-state probability that a uniform random symbol matches.

    Works for byte automata (``symbol_class`` over 256 symbols) and for
    2-strided automata (``product`` classes over 256 x 256 pairs).
    """
    probs = np.empty(len(automaton.states), dtype=np.float64)
    for i, state in enumerate(automaton.states):
        if hasattr(state, "product"):
            probs[i] = len(state.product) / 65536.0
        else:
            probs[i] = len(state.symbol_class) / 256.0
    return probs


def estimate_active_fraction(automaton, *, iterations: int = 12) -> float:
    """Expected steady-state fraction of active states under random input.

    Fixed-point iteration on per-state activation probabilities,
    treating states as independent: a state is enabled when it is an
    all-input start or when at least one predecessor was active, and
    active when additionally its symbol class matches (probability
    ``|C(s)| / 256`` under a uniform symbol).  The result steers the
    ``auto`` execution-backend policy — it decides sparse-vs-bit-
    parallel crossover, so a rough estimate is enough; the benchmark
    harness measures the real fraction when precision matters.
    """
    n = len(automaton)
    if n == 0:
        return 0.0
    match_p = _match_probabilities(automaton)
    start_all = np.zeros(n, dtype=bool)
    for state in automaton.states:
        if state.start is StartKind.ALL_INPUT:
            start_all[state.ste_id] = True
    edges = list(automaton.transitions())
    if edges:
        src = np.fromiter((u for u, _ in edges), dtype=np.int64)
        dst = np.fromiter((v for _, v in edges), dtype=np.int64)
    else:
        src = dst = np.empty(0, dtype=np.int64)
    p = start_all * match_p
    for _ in range(iterations):
        # P(no predecessor active) via a log-space scatter-product
        log_miss = np.zeros(n, dtype=np.float64)
        if src.size:
            np.add.at(log_miss, dst, np.log1p(-np.minimum(p[src], 1.0 - 1e-12)))
        enabled_p = np.where(start_all, 1.0, 1.0 - np.exp(log_miss))
        p = enabled_p * match_p
    return float(p.mean())


@dataclass(frozen=True)
class AutomatonStats:
    """Summary statistics of an automaton (Table I's raw ingredients)."""

    name: str
    num_states: int
    num_transitions: int
    num_start: int
    num_reporting: int
    avg_symbol_class_size: float
    max_symbol_class_size: int
    alphabet_size: int
    num_components: int
    largest_component: int
    avg_out_degree: float


def automaton_stats(automaton: Automaton) -> AutomatonStats:
    """Compute :class:`AutomatonStats` for ``automaton``."""
    components = connected_components(automaton)
    sizes = [len(s.symbol_class) for s in automaton.states]
    n = len(automaton)
    return AutomatonStats(
        name=automaton.name,
        num_states=n,
        num_transitions=automaton.num_transitions(),
        num_start=len(automaton.start_states()),
        num_reporting=len(automaton.reporting_states()),
        avg_symbol_class_size=sum(sizes) / n if n else 0.0,
        max_symbol_class_size=max(sizes, default=0),
        alphabet_size=len(automaton.alphabet()),
        num_components=len(components),
        largest_component=len(components[0]) if components else 0,
        avg_out_degree=automaton.num_transitions() / n if n else 0.0,
    )
