"""Homogeneous-NFA substrate: symbols, automata, regex, formats, transforms."""

from repro.automata.analysis import (
    AutomatonStats,
    automaton_stats,
    balanced_shards,
    bandwidth_under_order,
    bfs_order,
    connected_components,
)
from repro.automata.anml import dump_anml, dumps_anml, load_anml, loads_anml
from repro.automata.bitsplit import BitSplitResult, bitsplit, nibble_stream
from repro.automata.glushkov import compile_regex_set, glushkov_nfa
from repro.automata.mnrl import dump_mnrl, dumps_mnrl, load_mnrl, loads_mnrl
from repro.automata.nfa import STE, Automaton, StartKind
from repro.automata.optimize import (
    OptimizationReport,
    merge_common_prefixes,
    optimize,
    remove_dead_states,
)
from repro.automata.regex import literal, parse_regex
from repro.automata.striding import (
    ProductClass,
    StridedAutomaton,
    pad_input,
    stride2,
    stride_pairs,
)
from repro.automata.symbols import ALPHABET_SIZE, SymbolClass

__all__ = [
    "ALPHABET_SIZE",
    "Automaton",
    "AutomatonStats",
    "BitSplitResult",
    "ProductClass",
    "STE",
    "StartKind",
    "StridedAutomaton",
    "SymbolClass",
    "automaton_stats",
    "balanced_shards",
    "bandwidth_under_order",
    "bfs_order",
    "bitsplit",
    "compile_regex_set",
    "connected_components",
    "dump_anml",
    "dump_mnrl",
    "dumps_anml",
    "dumps_mnrl",
    "glushkov_nfa",
    "literal",
    "OptimizationReport",
    "load_anml",
    "load_mnrl",
    "loads_anml",
    "loads_mnrl",
    "merge_common_prefixes",
    "nibble_stream",
    "optimize",
    "remove_dead_states",
    "pad_input",
    "parse_regex",
    "stride2",
    "stride_pairs",
]
