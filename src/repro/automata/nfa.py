"""Homogeneous (ANML-style) non-deterministic finite automata.

A homogeneous NFA attaches the accepted symbol class to the *state*
rather than to each edge: a state s with class C(s) becomes active at
cycle t iff (a) some predecessor was active at cycle t-1 (or s is a
start state enabled at t) and (b) the input symbol at t is in C(s).
This is the automaton model of the Micron AP, Cache Automaton, Impala,
eAP and CAMA; the paper calls states *STEs* (state transition
elements).
"""

from __future__ import annotations

import enum
import hashlib
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.automata.symbols import SymbolClass
from repro.errors import AutomatonError


def edges_digest(
    num_states: int, successors: list[set[int]], salt: bytes = b""
) -> str:
    """Hex digest of a dense-id transition structure.

    The one hashing scheme behind every ``structure_fingerprint`` —
    :class:`Automaton` and :class:`~repro.automata.striding.
    StridedAutomaton` share it so their cache keyspaces can never
    drift apart.
    """
    h = hashlib.sha256()
    h.update(salt)
    h.update(num_states.to_bytes(8, "little"))
    for u, succ in enumerate(successors):
        for v in sorted(succ):
            h.update(u.to_bytes(8, "little"))
            h.update(v.to_bytes(8, "little"))
    return h.hexdigest()


class StartKind(enum.Enum):
    """When a state is self-enabled, independent of its predecessors."""

    NONE = "none"
    #: enabled on every input symbol (ANML ``start-of-input="all-input"``)
    ALL_INPUT = "all-input"
    #: enabled only on the first symbol of the stream
    START_OF_DATA = "start-of-data"


@dataclass
class STE:
    """One state transition element of a homogeneous NFA.

    Attributes:
        ste_id: dense integer id, equal to the state's index in its
            :class:`Automaton`.
        symbol_class: the set of symbols this state matches.
        start: whether/how the state self-enables.
        reporting: whether an activation of this state emits a report.
        report_code: opaque label attached to reports (ANML allows one).
        name: optional human-readable name preserved from ANML/MNRL.
    """

    ste_id: int
    symbol_class: SymbolClass
    start: StartKind = StartKind.NONE
    reporting: bool = False
    report_code: str | None = None
    name: str | None = None

    def label(self) -> str:
        return self.name if self.name is not None else f"ste{self.ste_id}"


@dataclass
class Automaton:
    """A homogeneous NFA: STEs plus an STE-to-STE transition relation.

    Transitions are stored as forward adjacency ``successors[u] = {v}``.
    States are created through :meth:`add_state` so ids stay dense, which
    the simulator and mapper rely on.
    """

    name: str = "automaton"
    states: list[STE] = field(default_factory=list)
    _successors: list[set[int]] = field(default_factory=list)
    #: bumped on every structural mutation; invalidates cached fingerprints
    _mutations: int = field(default=0, repr=False, compare=False)
    _fingerprint: tuple[int, str] | None = field(
        default=None, repr=False, compare=False
    )

    # -- construction ---------------------------------------------------
    def add_state(
        self,
        symbol_class: SymbolClass | str,
        *,
        start: StartKind = StartKind.NONE,
        reporting: bool = False,
        report_code: str | None = None,
        name: str | None = None,
    ) -> STE:
        """Create a state and return it; its id is assigned densely."""
        if isinstance(symbol_class, str):
            symbol_class = SymbolClass.parse(symbol_class)
        if not symbol_class:
            raise AutomatonError("a state must accept at least one symbol")
        ste = STE(
            ste_id=len(self.states),
            symbol_class=symbol_class,
            start=start,
            reporting=reporting,
            report_code=report_code,
            name=name,
        )
        self.states.append(ste)
        self._successors.append(set())
        self._mutations += 1
        return ste

    def add_transition(self, src: int | STE, dst: int | STE) -> None:
        """Add the transition ``src -> dst`` (idempotent)."""
        u = src.ste_id if isinstance(src, STE) else src
        v = dst.ste_id if isinstance(dst, STE) else dst
        n = len(self.states)
        if not (0 <= u < n and 0 <= v < n):
            raise AutomatonError(f"transition ({u}, {v}) references unknown state")
        self._successors[u].add(v)
        self._mutations += 1

    # -- accessors ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.states)

    def structure_fingerprint(self) -> str:
        """Hex digest of the transition *structure* (ids + edges only).

        Keys structure-derived caches — e.g. the successor CSR shared
        across engine compilations — so it deliberately excludes symbol
        classes, start kinds and reporting flags; use
        :func:`repro.service.ruleset.ruleset_fingerprint` to key
        *language*-derived artifacts.  Cached until the next structural
        mutation.
        """
        if self._fingerprint is not None and self._fingerprint[0] == self._mutations:
            return self._fingerprint[1]
        digest = edges_digest(len(self.states), self._successors)
        self._fingerprint = (self._mutations, digest)
        return digest

    def successors(self, ste_id: int) -> frozenset[int]:
        return frozenset(self._successors[ste_id])

    def predecessors(self, ste_id: int) -> frozenset[int]:
        return frozenset(
            u for u in range(len(self.states)) if ste_id in self._successors[u]
        )

    def transitions(self) -> Iterator[tuple[int, int]]:
        """Yield all transitions as (src, dst) pairs."""
        for u, succ in enumerate(self._successors):
            for v in sorted(succ):
                yield u, v

    def num_transitions(self) -> int:
        return sum(len(s) for s in self._successors)

    def start_states(self) -> list[STE]:
        return [s for s in self.states if s.start is not StartKind.NONE]

    def reporting_states(self) -> list[STE]:
        return [s for s in self.states if s.reporting]

    # -- validation -----------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`AutomatonError` unless the automaton is usable.

        A usable automaton has at least one start state, at least one
        reporting state, dense consistent ids, and no state that is
        unreachable from every start state.
        """
        if not self.states:
            raise AutomatonError(f"{self.name}: automaton has no states")
        for i, ste in enumerate(self.states):
            if ste.ste_id != i:
                raise AutomatonError(
                    f"{self.name}: state at index {i} has id {ste.ste_id}"
                )
            if not ste.symbol_class:
                raise AutomatonError(
                    f"{self.name}: state {ste.label()} has an empty symbol class"
                )
        if not self.start_states():
            raise AutomatonError(f"{self.name}: automaton has no start state")
        if not self.reporting_states():
            raise AutomatonError(f"{self.name}: automaton has no reporting state")
        unreachable = self.unreachable_states()
        if unreachable:
            sample = ", ".join(str(i) for i in sorted(unreachable)[:5])
            raise AutomatonError(
                f"{self.name}: {len(unreachable)} states unreachable from any "
                f"start state (e.g. {sample})"
            )

    def unreachable_states(self) -> set[int]:
        """Ids of states not reachable from any start state."""
        seen: set[int] = set()
        frontier = [s.ste_id for s in self.start_states()]
        seen.update(frontier)
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for v in self._successors[u]:
                    if v not in seen:
                        seen.add(v)
                        nxt.append(v)
            frontier = nxt
        return set(range(len(self.states))) - seen

    # -- convenience ----------------------------------------------------
    def merge(self, other: "Automaton") -> dict[int, int]:
        """Append ``other``'s states/transitions; return old-id -> new-id."""
        offset = len(self.states)
        remap: dict[int, int] = {}
        for ste in other.states:
            new = self.add_state(
                ste.symbol_class,
                start=ste.start,
                reporting=ste.reporting,
                report_code=ste.report_code,
                name=ste.name,
            )
            remap[ste.ste_id] = new.ste_id
        for u, v in other.transitions():
            self.add_transition(remap[u], remap[v])
        if offset == 0 and not remap:
            raise AutomatonError("cannot merge an empty automaton")
        return remap

    def subautomaton(self, state_ids: Iterable[int], name: str | None = None) -> "Automaton":
        """The induced sub-automaton on ``state_ids`` (ids are re-densified)."""
        keep = sorted(set(state_ids))
        remap = {old: new for new, old in enumerate(keep)}
        sub = Automaton(name=name or f"{self.name}.sub")
        for old in keep:
            ste = self.states[old]
            sub.add_state(
                ste.symbol_class,
                start=ste.start,
                reporting=ste.reporting,
                report_code=ste.report_code,
                name=ste.name,
            )
        for u, v in self.transitions():
            if u in remap and v in remap:
                sub.add_transition(remap[u], remap[v])
        return sub

    def average_symbol_class_size(self) -> float:
        """Mean |C(s)| over states — the paper's "symbol class size"."""
        if not self.states:
            return 0.0
        return sum(len(s.symbol_class) for s in self.states) / len(self.states)

    def alphabet(self) -> SymbolClass:
        """Union of all symbol classes — the automaton's live alphabet."""
        mask = 0
        for ste in self.states:
            mask |= ste.symbol_class.mask
        return SymbolClass(mask)

    def __repr__(self) -> str:
        return (
            f"Automaton({self.name!r}, states={len(self.states)}, "
            f"transitions={self.num_transitions()})"
        )
