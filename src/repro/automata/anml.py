"""ANML (Automata Network Markup Language) reader/writer.

ANML is the XML interchange format introduced with the Micron Automata
Processor and used by ANMLZoo.  We support the homogeneous-NFA subset
every in-memory accelerator consumes: ``state-transition-element``
nodes with ``symbol-set``, ``start-of-data``/``all-input`` start kinds,
``activate-on-match`` edges and ``report-on-match`` flags.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

from repro.automata.nfa import Automaton, StartKind
from repro.automata.symbols import SymbolClass
from repro.errors import AutomatonError, ParseError

_START_ATTR_TO_KIND = {
    None: StartKind.NONE,
    "none": StartKind.NONE,
    "all-input": StartKind.ALL_INPUT,
    "start-of-data": StartKind.START_OF_DATA,
}
_KIND_TO_START_ATTR = {
    StartKind.ALL_INPUT: "all-input",
    StartKind.START_OF_DATA: "start-of-data",
}


def loads_anml(text: str, *, name: str | None = None) -> Automaton:
    """Parse an ANML document from a string."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ParseError(f"malformed ANML XML: {exc}") from exc
    network = root if root.tag == "automata-network" else root.find("automata-network")
    if network is None:
        raise ParseError("ANML document has no <automata-network>")
    automaton = Automaton(name=name or network.get("id", "anml"))

    elements = network.findall("state-transition-element")
    if not elements:
        raise ParseError("automata-network contains no state-transition-element")
    id_to_index: dict[str, int] = {}
    edges: list[tuple[str, str]] = []
    for element in elements:
        ste_id = element.get("id")
        if ste_id is None:
            raise ParseError("state-transition-element without id")
        if ste_id in id_to_index:
            raise ParseError(f"duplicate STE id {ste_id!r}")
        symbol_set = element.get("symbol-set")
        if symbol_set is None:
            raise ParseError(f"STE {ste_id!r} has no symbol-set")
        start_attr = element.get("start")
        if start_attr not in _START_ATTR_TO_KIND:
            raise ParseError(f"STE {ste_id!r} has unknown start kind {start_attr!r}")
        report = element.find("report-on-match")
        try:
            symbol_class = SymbolClass.parse(symbol_set)
        except AutomatonError as exc:
            raise ParseError(f"STE {ste_id!r}: {exc}") from exc
        ste = automaton.add_state(
            symbol_class,
            start=_START_ATTR_TO_KIND[start_attr],
            reporting=report is not None,
            report_code=report.get("reportcode") if report is not None else None,
            name=ste_id,
        )
        id_to_index[ste_id] = ste.ste_id
        for activation in element.findall("activate-on-match"):
            target = activation.get("element")
            if target is None:
                raise ParseError(f"STE {ste_id!r}: activate-on-match without element")
            edges.append((ste_id, target))
    for src, dst in edges:
        if dst not in id_to_index:
            raise ParseError(f"activate-on-match references unknown STE {dst!r}")
        automaton.add_transition(id_to_index[src], id_to_index[dst])
    return automaton


def load_anml(path: str | Path) -> Automaton:
    """Load an ANML file from disk."""
    path = Path(path)
    return loads_anml(path.read_text(), name=path.stem)


def dumps_anml(automaton: Automaton) -> str:
    """Serialize an automaton to an ANML document string."""
    root = ET.Element("anml", {"version": "1.0"})
    network = ET.SubElement(root, "automata-network", {"id": automaton.name})
    for ste in automaton.states:
        attrs = {"id": ste.label(), "symbol-set": ste.symbol_class.to_anml()}
        if ste.start in _KIND_TO_START_ATTR:
            attrs["start"] = _KIND_TO_START_ATTR[ste.start]
        element = ET.SubElement(network, "state-transition-element", attrs)
        for dst in sorted(automaton.successors(ste.ste_id)):
            ET.SubElement(
                element,
                "activate-on-match",
                {"element": automaton.states[dst].label()},
            )
        if ste.reporting:
            report_attrs = {}
            if ste.report_code is not None:
                report_attrs["reportcode"] = str(ste.report_code)
            ET.SubElement(element, "report-on-match", report_attrs)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def dump_anml(automaton: Automaton, path: str | Path) -> None:
    """Write an automaton to an ANML file."""
    Path(path).write_text(dumps_anml(automaton))
