"""VASim-style automaton optimizations: prefix merging and pruning.

The paper's toolchain runs on top of VASim, whose standard optimization
pass merges *common prefixes*: two states are equivalent-as-prefixes
when they have the same symbol class, the same start kind, the same
report behaviour, and the same predecessor set — multi-pattern rule
sets (Snort, ClamAV, Brill) share long literal prefixes, so this
shrinks them substantially without changing the matched language.

The pass iterates to a fixed point (merging two states can make their
successors mergeable) and preserves reports exactly; the tests assert
report-equivalence on randomized automata.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.nfa import Automaton


@dataclass(frozen=True)
class OptimizationReport:
    """What an optimization pass did."""

    states_before: int
    states_after: int
    passes: int

    @property
    def reduction(self) -> float:
        if not self.states_before:
            return 0.0
        return 1.0 - self.states_after / self.states_before


def _merge_signature(automaton: Automaton, predecessors: list[frozenset[int]]):
    """Group states by (class, start, reporting, code, predecessors)."""
    groups: dict[tuple, list[int]] = {}
    for ste in automaton.states:
        key = (
            ste.symbol_class.mask,
            ste.start,
            ste.reporting,
            ste.report_code,
            predecessors[ste.ste_id],
        )
        groups.setdefault(key, []).append(ste.ste_id)
    return [members for members in groups.values() if len(members) > 1]


def _rebuild(automaton: Automaton, leader_of: dict[int, int]) -> Automaton:
    """Rebuild with every state replaced by its merge leader."""
    keep = sorted({leader_of[s] for s in range(len(automaton))})
    remap = {old: new for new, old in enumerate(keep)}
    out = Automaton(name=automaton.name)
    for old in keep:
        ste = automaton.states[old]
        out.add_state(
            ste.symbol_class,
            start=ste.start,
            reporting=ste.reporting,
            report_code=ste.report_code,
            name=ste.name,
        )
    for u, v in automaton.transitions():
        out.add_transition(remap[leader_of[u]], remap[leader_of[v]])
    return out


def merge_common_prefixes(
    automaton: Automaton, *, max_passes: int = 32
) -> tuple[Automaton, OptimizationReport]:
    """Merge prefix-equivalent states to a fixed point.

    Returns the optimized automaton (a new object; the input is left
    untouched) and a report of the reduction achieved.
    """
    states_before = len(automaton)
    current = automaton
    passes = 0
    while passes < max_passes:
        passes += 1
        n = len(current)
        predecessors = [frozenset() for _ in range(n)]
        pred_sets: list[set[int]] = [set() for _ in range(n)]
        for u, v in current.transitions():
            pred_sets[v].add(u)
        predecessors = [frozenset(p) for p in pred_sets]
        groups = _merge_signature(current, predecessors)
        if not groups:
            break
        leader_of = {s: s for s in range(n)}
        for members in groups:
            leader = members[0]
            for other in members[1:]:
                leader_of[other] = leader
        # A merged state's self-predecessor references need one extra
        # indirection (u may itself have been merged).
        current = _rebuild(current, leader_of)
    return current, OptimizationReport(
        states_before=states_before,
        states_after=len(current),
        passes=passes,
    )


def remove_dead_states(automaton: Automaton) -> tuple[Automaton, OptimizationReport]:
    """Drop states that can never contribute to a report.

    A state is *dead* when no reporting state is reachable from it (in
    the forward direction).  Unreachable-from-start states are already
    rejected by :meth:`Automaton.validate`; dead states pass validation
    but waste CAM entries and switch rows.
    """
    n = len(automaton)
    # reverse reachability from reporting states
    reverse: list[set[int]] = [set() for _ in range(n)]
    for u, v in automaton.transitions():
        reverse[v].add(u)
    alive: set[int] = set()
    frontier = [s.ste_id for s in automaton.reporting_states()]
    alive.update(frontier)
    while frontier:
        nxt = []
        for v in frontier:
            for u in reverse[v]:
                if u not in alive:
                    alive.add(u)
                    nxt.append(u)
        frontier = nxt
    if len(alive) == n:
        return automaton, OptimizationReport(n, n, 1)
    optimized = automaton.subautomaton(sorted(alive), name=automaton.name)
    return optimized, OptimizationReport(
        states_before=n, states_after=len(optimized), passes=1
    )


def optimize(automaton: Automaton) -> tuple[Automaton, OptimizationReport]:
    """The default pipeline: dead-state removal, then prefix merging."""
    pruned, prune_report = remove_dead_states(automaton)
    merged, merge_report = merge_common_prefixes(pruned)
    return merged, OptimizationReport(
        states_before=prune_report.states_before,
        states_after=merge_report.states_after,
        passes=prune_report.passes + merge_report.passes,
    )
