"""Regular-expression front end.

Parses a practical regex subset into a small AST that the Glushkov
construction (:mod:`repro.automata.glushkov`) turns into a homogeneous
NFA.  The subset covers what the paper's benchmark families use:

* literals and escapes (``\\n``, ``\\t``, ``\\r``, ``\\xNN``, ``\\\\``, ...)
* character classes ``[a-f0-9]``, negated classes ``[^\\x00]``,
  the shorthands ``\\d \\D \\w \\W \\s \\S`` and ``.``
* grouping ``( )``, alternation ``|``
* quantifiers ``* + ?`` and counted repetition ``{m}``, ``{m,}``, ``{m,n}``

Anchors are not part of the subset: spatial automata processors run
patterns *unanchored* over a stream (every input position may begin a
match), which is expressed in the automaton's start-state kind instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.symbols import ALPHABET_SIZE, SymbolClass
from repro.errors import RegexSyntaxError

_MAX_COUNTED_REPEAT = 1024


# -- AST ----------------------------------------------------------------
class Node:
    """Base class for regex AST nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Epsilon(Node):
    """Matches the empty string."""

    __slots__ = ()


@dataclass(frozen=True)
class Symbol(Node):
    """Matches one symbol from a class."""

    symbol_class: SymbolClass

    __slots__ = ("symbol_class",)


@dataclass(frozen=True)
class Concat(Node):
    parts: tuple[Node, ...]

    __slots__ = ("parts",)


@dataclass(frozen=True)
class Alt(Node):
    options: tuple[Node, ...]

    __slots__ = ("options",)


@dataclass(frozen=True)
class Star(Node):
    """Zero or more repetitions."""

    child: Node

    __slots__ = ("child",)


@dataclass(frozen=True)
class Plus(Node):
    """One or more repetitions."""

    child: Node

    __slots__ = ("child",)


@dataclass(frozen=True)
class Optional_(Node):
    """Zero or one occurrence."""

    child: Node

    __slots__ = ("child",)


_CLASS_SHORTHANDS = {
    "d": SymbolClass.from_ranges((ord("0"), ord("9"))),
    "w": SymbolClass.from_ranges(
        (ord("a"), ord("z")), (ord("A"), ord("Z")), (ord("0"), ord("9"))
    ).union(SymbolClass.from_symbols([ord("_")])),
    "s": SymbolClass.from_symbols([ord(c) for c in " \t\n\r\f\v"]),
}
_CLASS_SHORTHANDS.update(
    {key.upper(): cls.negate() for key, cls in list(_CLASS_SHORTHANDS.items())}
)

_SIMPLE_ESCAPES = {
    "n": ord("\n"),
    "r": ord("\r"),
    "t": ord("\t"),
    "f": ord("\f"),
    "v": ord("\v"),
    "a": 0x07,
    "0": 0,
}

_METACHARS = set("()[]{}|*+?.\\")


class _Parser:
    """Recursive-descent parser over a pattern string."""

    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.pos = 0

    # -- character stream ----------------------------------------------
    def _peek(self) -> str | None:
        if self.pos < len(self.pattern):
            return self.pattern[self.pos]
        return None

    def _take(self) -> str:
        ch = self._peek()
        if ch is None:
            raise RegexSyntaxError(self.pattern, self.pos, "unexpected end of pattern")
        self.pos += 1
        return ch

    def _error(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(self.pattern, self.pos, message)

    # -- grammar ---------------------------------------------------------
    def parse(self) -> Node:
        node = self._alternation()
        if self.pos != len(self.pattern):
            raise self._error(f"unexpected {self._peek()!r}")
        return node

    def _alternation(self) -> Node:
        options = [self._concatenation()]
        while self._peek() == "|":
            self._take()
            options.append(self._concatenation())
        if len(options) == 1:
            return options[0]
        return Alt(tuple(options))

    def _concatenation(self) -> Node:
        parts: list[Node] = []
        while True:
            ch = self._peek()
            if ch is None or ch in "|)":
                break
            parts.append(self._repetition())
        if not parts:
            return Epsilon()
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def _repetition(self) -> Node:
        node = self._atom()
        while True:
            ch = self._peek()
            if ch == "*":
                self._take()
                node = Star(node)
            elif ch == "+":
                self._take()
                node = Plus(node)
            elif ch == "?":
                self._take()
                node = Optional_(node)
            elif ch == "{":
                node = self._counted(node)
            else:
                return node

    def _counted(self, node: Node) -> Node:
        start = self.pos
        self._take()  # '{'
        lo = self._integer()
        hi: int | None = lo
        if self._peek() == ",":
            self._take()
            hi = None if self._peek() == "}" else self._integer()
        if self._take() != "}":
            self.pos = start
            raise self._error("malformed counted repetition")
        if hi is not None and hi < lo:
            raise self._error(f"counted repetition {{{lo},{hi}}} has max < min")
        if max(lo, hi or 0) > _MAX_COUNTED_REPEAT:
            raise self._error(
                f"counted repetition exceeds limit {_MAX_COUNTED_REPEAT}"
            )
        # Expand structurally: Glushkov needs one position per occurrence,
        # matching how spatial automata hardware unrolls bounded repeats.
        required: list[Node] = [node] * lo
        if hi is None:
            if lo == 0:
                return Star(node)
            required[-1] = Plus(node)
        else:
            required.extend([Optional_(node)] * (hi - lo))
        if not required:
            return Epsilon()
        if len(required) == 1:
            return required[0]
        return Concat(tuple(required))

    def _integer(self) -> int:
        digits = ""
        while (ch := self._peek()) is not None and ch.isdigit():
            digits += self._take()
        if not digits:
            raise self._error("expected an integer")
        return int(digits)

    def _atom(self) -> Node:
        ch = self._peek()
        if ch is None:
            raise self._error("expected an atom")
        if ch == "(":
            self._take()
            node = self._alternation()
            if self._peek() != ")":
                raise self._error("unbalanced '('")
            self._take()
            return node
        if ch == "[":
            return Symbol(self._bracket_class())
        if ch == ".":
            self._take()
            return Symbol(SymbolClass.universe())
        if ch == "\\":
            return Symbol(self._escape())
        if ch in "*+?{":
            raise self._error(f"quantifier {ch!r} with nothing to repeat")
        if ch in ")|":
            raise self._error(f"unexpected {ch!r}")
        self._take()
        return Symbol(SymbolClass.from_symbols([ord(ch) % ALPHABET_SIZE]))

    def _escape(self) -> SymbolClass:
        self._take()  # backslash
        ch = self._take()
        if ch in _CLASS_SHORTHANDS:
            return _CLASS_SHORTHANDS[ch]
        if ch in _SIMPLE_ESCAPES:
            return SymbolClass.from_symbols([_SIMPLE_ESCAPES[ch]])
        if ch == "x":
            hex_digits = ""
            for _ in range(2):
                hex_digits += self._take()
            try:
                return SymbolClass.from_symbols([int(hex_digits, 16)])
            except ValueError:
                raise self._error(f"bad hex escape \\x{hex_digits}") from None
        # Any other escaped character is a literal (covers metacharacters).
        return SymbolClass.from_symbols([ord(ch) % ALPHABET_SIZE])

    def _bracket_class(self) -> SymbolClass:
        self._take()  # '['
        negate = False
        if self._peek() == "^":
            self._take()
            negate = True
        mask = 0
        first = True
        while True:
            ch = self._peek()
            if ch is None:
                raise self._error("unterminated character class")
            if ch == "]" and not first:
                self._take()
                break
            lo_class = self._class_member()
            first = False
            if (
                self._peek() == "-"
                and self.pos + 1 < len(self.pattern)
                and self.pattern[self.pos + 1] != "]"
            ):
                self._take()  # '-'
                hi_class = self._class_member()
                lo_syms, hi_syms = lo_class.symbols(), hi_class.symbols()
                if len(lo_syms) != 1 or len(hi_syms) != 1:
                    raise self._error("character range endpoints must be single")
                lo, hi = lo_syms[0], hi_syms[0]
                if lo > hi:
                    raise self._error(f"reversed character range {lo}-{hi}")
                mask |= SymbolClass.from_ranges((lo, hi)).mask
            else:
                mask |= lo_class.mask
        cls = SymbolClass(mask)
        return cls.negate() if negate else cls

    def _class_member(self) -> SymbolClass:
        ch = self._take()
        if ch == "\\":
            self.pos -= 1
            return self._escape()
        return SymbolClass.from_symbols([ord(ch) % ALPHABET_SIZE])


def parse_regex(pattern: str) -> Node:
    """Parse ``pattern`` into a regex AST.

    Raises:
        RegexSyntaxError: if the pattern is outside the supported subset.
    """
    return _Parser(pattern).parse()


def literal(text: str | bytes) -> Node:
    """AST matching ``text`` exactly (no metacharacter interpretation)."""
    if isinstance(text, str):
        text = text.encode("latin-1")
    if not text:
        return Epsilon()
    parts = tuple(Symbol(SymbolClass.from_symbols([b])) for b in text)
    return parts[0] if len(parts) == 1 else Concat(parts)
