"""Impala's bit-split transform: 8-bit STEs -> chained 4-bit STEs.

Impala (Sadredini et al., HPCA 2020) replaces each 8-bit symbol with two
4-bit sub-symbols so the 256-row one-hot matching memory shrinks to two
16-row banks.  Each original STE becomes one or more *hi-nibble* STEs
chained to *lo-nibble* STEs: the class ``C`` is decomposed exactly into
rectangles ``H_j x L_j`` (group the high nibbles by the set of low
nibbles they admit), one hi/lo STE pair per rectangle.

To keep the result a plain homogeneous NFA we embed the phase in the
symbol value: the transformed automaton reads the *nibble stream*
``hi(b0), 16+lo(b0), hi(b1), 16+lo(b1), ...`` so hi-STE classes live in
``{0..15}`` and lo-STE classes in ``{16..31}``.  A hi state can then
never fire in a lo phase, which is exactly Impala's bank interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.nfa import Automaton, StartKind
from repro.automata.symbols import SymbolClass

LO_OFFSET = 16


def nibble_stream(data: bytes) -> bytes:
    """Encode a byte stream as the interleaved nibble stream."""
    out = bytearray()
    for byte in data:
        out.append(byte >> 4)
        out.append(LO_OFFSET + (byte & 0xF))
    return bytes(out)


def rectangle_decomposition(symbol_class: SymbolClass) -> list[tuple[int, int]]:
    """Decompose a class into hi/lo rectangles ``(hi_mask, lo_mask)``.

    ``hi_mask``/``lo_mask`` are 16-bit masks over nibble values.  The
    rectangles partition the class: grouping high nibbles by their
    low-nibble set yields disjoint rectangles whose union is exact.
    """
    lo_sets: dict[int, int] = {}
    mask = symbol_class.mask
    for hi in range(16):
        lo_mask = (mask >> (hi * 16)) & 0xFFFF
        if lo_mask:
            lo_sets[hi] = lo_mask
    groups: dict[int, int] = {}
    for hi, lo_mask in lo_sets.items():
        groups[lo_mask] = groups.get(lo_mask, 0) | (1 << hi)
    return [(hi_mask, lo_mask) for lo_mask, hi_mask in sorted(groups.items())]


@dataclass(frozen=True)
class BitSplitResult:
    """The transformed automaton plus bookkeeping for evaluation."""

    automaton: Automaton
    #: number of hi-nibble STEs (bank-0 columns)
    num_hi_states: int
    #: number of lo-nibble STEs (bank-1 columns)
    num_lo_states: int
    #: map lo-STE id -> original reporting state id (for equivalence checks)
    report_origin: dict[int, int]
    #: hi-nibble STE ids per original state (index = original state id)
    hi_states: list[list[int]] = None
    #: lo-nibble STE ids per original state
    lo_states: list[list[int]] = None


def bitsplit(automaton: Automaton) -> BitSplitResult:
    """Apply the 4-bit bit-split transform.

    The result reports on lo-phase cycles: a report of original state
    ``s`` at symbol index ``t`` appears at nibble index ``2t + 1``.
    """
    out = Automaton(name=f"{automaton.name}.bitsplit")
    report_origin: dict[int, int] = {}
    num_hi = 0
    num_lo = 0
    # For each original state: lists of (hi_ste, lo_ste) pairs.
    hi_states: list[list[int]] = []
    lo_states: list[list[int]] = []
    for ste in automaton.states:
        pairs_hi: list[int] = []
        pairs_lo: list[int] = []
        for hi_mask, lo_mask in rectangle_decomposition(ste.symbol_class):
            hi_class = SymbolClass(hi_mask)
            lo_class = SymbolClass(lo_mask << LO_OFFSET)
            hi_ste = out.add_state(
                hi_class,
                start=ste.start,
                name=f"{ste.label()}.hi{len(pairs_hi)}",
            )
            lo_ste = out.add_state(
                lo_class,
                reporting=ste.reporting,
                report_code=ste.report_code,
                name=f"{ste.label()}.lo{len(pairs_lo)}",
            )
            out.add_transition(hi_ste, lo_ste)
            if ste.reporting:
                report_origin[lo_ste.ste_id] = ste.ste_id
            pairs_hi.append(hi_ste.ste_id)
            pairs_lo.append(lo_ste.ste_id)
            num_hi += 1
            num_lo += 1
        hi_states.append(pairs_hi)
        lo_states.append(pairs_lo)
    for u, v in automaton.transitions():
        for lo_ste in lo_states[u]:
            for hi_ste in hi_states[v]:
                out.add_transition(lo_ste, hi_ste)
    return BitSplitResult(
        automaton=out,
        num_hi_states=num_hi,
        num_lo_states=num_lo,
        report_origin=report_origin,
        hi_states=hi_states,
        lo_states=lo_states,
    )
