"""Symbol classes over a byte-sized alphabet.

A *symbol class* is the set of input symbols accepted by one STE
(state transition element) of a homogeneous NFA.  The paper's automata
operate on 8-bit symbols, so a class is a subset of ``{0, ..., 255}``;
we store it as a 256-bit membership mask in a Python integer, which
makes union/intersection/negation single integer operations.

The class also understands ANML's character-class syntax
(``[abc]``, ``[a-f]``, ``[^xyz]``, ``*``) because benchmark files and
the regex front end both produce classes in that notation.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from functools import total_ordering

from repro.errors import AutomatonError
from repro.utils.bitvec import bit_positions, bits_from_positions, mask_of_width

ALPHABET_SIZE = 256
FULL_MASK = mask_of_width(ALPHABET_SIZE)

_ESCAPES = {
    "n": ord("\n"),
    "r": ord("\r"),
    "t": ord("\t"),
    "0": 0,
    "\\": ord("\\"),
    "]": ord("]"),
    "[": ord("["),
    "^": ord("^"),
    "-": ord("-"),
}


@total_ordering
class SymbolClass:
    """An immutable set of 8-bit symbols.

    Instances are hashable and ordered by their membership mask so they
    can key dictionaries (the compression and clustering passes group
    states by symbol class).
    """

    __slots__ = ("_mask",)

    def __init__(self, mask: int = 0) -> None:
        if not 0 <= mask <= FULL_MASK:
            raise AutomatonError(f"symbol-class mask out of range: {mask:#x}")
        self._mask = mask

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_symbols(cls, symbols: Iterable[int]) -> "SymbolClass":
        """Class containing exactly ``symbols`` (each in 0..255)."""
        mask = 0
        for sym in symbols:
            if not 0 <= sym < ALPHABET_SIZE:
                raise AutomatonError(f"symbol out of range 0..255: {sym}")
            mask |= 1 << sym
        return cls(mask)

    @classmethod
    def from_bytes(cls, data: bytes | str) -> "SymbolClass":
        """Class containing the byte values of ``data``."""
        if isinstance(data, str):
            data = data.encode("latin-1")
        return cls.from_symbols(data)

    @classmethod
    def from_ranges(cls, *ranges: tuple[int, int]) -> "SymbolClass":
        """Class containing the inclusive ranges ``(lo, hi)``."""
        mask = 0
        for lo, hi in ranges:
            if not (0 <= lo <= hi < ALPHABET_SIZE):
                raise AutomatonError(f"bad symbol range: ({lo}, {hi})")
            mask |= (mask_of_width(hi - lo + 1)) << lo
        return cls(mask)

    @classmethod
    def universe(cls) -> "SymbolClass":
        """The class accepting every symbol (ANML ``*``)."""
        return cls(FULL_MASK)

    @classmethod
    def empty(cls) -> "SymbolClass":
        return cls(0)

    @classmethod
    def parse(cls, text: str) -> "SymbolClass":
        """Parse an ANML-style symbol-set string.

        Accepts ``*`` (all symbols), a single character, an escape like
        ``\\n`` or ``\\x41``, or a bracket expression ``[...]`` with
        ranges and leading ``^`` negation.
        """
        if text == "*":
            return cls.universe()
        if text.startswith("[") and text.endswith("]"):
            return cls._parse_bracket(text[1:-1], text)
        symbols = list(_parse_char_sequence(text, text))
        if len(symbols) != 1:
            raise AutomatonError(
                f"symbol-set string must denote one symbol or a bracket "
                f"expression, got {text!r}"
            )
        return cls.from_symbols(symbols)

    @classmethod
    def _parse_bracket(cls, body: str, original: str) -> "SymbolClass":
        negate = body.startswith("^")
        if negate:
            body = body[1:]
        chars = list(_parse_char_sequence(body, original))
        mask = 0
        i = 0
        while i < len(chars):
            # A range is three entries: lo, RANGE marker, hi.
            if i + 2 < len(chars) and chars[i + 1] == _RANGE:
                lo, hi = chars[i], chars[i + 2]
                if lo == _RANGE or hi == _RANGE or lo > hi:
                    raise AutomatonError(f"bad range in symbol set {original!r}")
                mask |= mask_of_width(hi - lo + 1) << lo
                i += 3
            else:
                if chars[i] == _RANGE:
                    mask |= 1 << ord("-")
                else:
                    mask |= 1 << chars[i]
                i += 1
        if negate:
            mask = FULL_MASK & ~mask
        return cls(mask)

    # -- set protocol ---------------------------------------------------
    @property
    def mask(self) -> int:
        return self._mask

    def __contains__(self, symbol: int) -> bool:
        return 0 <= symbol < ALPHABET_SIZE and bool(self._mask >> symbol & 1)

    def __iter__(self) -> Iterator[int]:
        return bit_positions(self._mask)

    def __len__(self) -> int:
        return self._mask.bit_count()

    def __bool__(self) -> bool:
        return self._mask != 0

    def union(self, other: "SymbolClass") -> "SymbolClass":
        return SymbolClass(self._mask | other._mask)

    __or__ = union

    def intersection(self, other: "SymbolClass") -> "SymbolClass":
        return SymbolClass(self._mask & other._mask)

    __and__ = intersection

    def difference(self, other: "SymbolClass") -> "SymbolClass":
        return SymbolClass(self._mask & ~other._mask)

    __sub__ = difference

    def negate(self) -> "SymbolClass":
        """Complement with respect to the full 256-symbol alphabet."""
        return SymbolClass(FULL_MASK & ~self._mask)

    __invert__ = negate

    def issubset(self, other: "SymbolClass") -> bool:
        return self._mask & ~other._mask == 0

    def symbols(self) -> tuple[int, ...]:
        return tuple(bit_positions(self._mask))

    # -- comparisons ----------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, SymbolClass) and self._mask == other._mask

    def __lt__(self, other: "SymbolClass") -> bool:
        return self._mask < other._mask

    def __hash__(self) -> int:
        return hash(self._mask)

    # -- rendering ------------------------------------------------------
    def to_anml(self) -> str:
        """Render as an ANML symbol-set string (canonical form)."""
        if self._mask == FULL_MASK:
            return "*"
        size = len(self)
        negated = size > ALPHABET_SIZE // 2
        mask = self.negate()._mask if negated else self._mask
        parts = []
        for lo, hi in _runs(mask):
            if hi == lo:
                parts.append(_render_char(lo))
            elif hi == lo + 1:
                parts.append(_render_char(lo) + _render_char(hi))
            else:
                parts.append(f"{_render_char(lo)}-{_render_char(hi)}")
        body = "".join(parts)
        return f"[^{body}]" if negated else f"[{body}]"

    def __repr__(self) -> str:
        return f"SymbolClass({self.to_anml()!r})"


_RANGE = -1  # sentinel emitted by _parse_char_sequence for an unescaped '-'


def _parse_char_sequence(body: str, original: str) -> Iterator[int]:
    """Yield symbol values (and range sentinels) from a class body."""
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            if i + 1 >= len(body):
                raise AutomatonError(f"dangling escape in symbol set {original!r}")
            nxt = body[i + 1]
            if nxt == "x":
                if i + 3 >= len(body):
                    raise AutomatonError(
                        f"bad \\x escape in symbol set {original!r}"
                    )
                try:
                    yield int(body[i + 2 : i + 4], 16)
                except ValueError as exc:
                    raise AutomatonError(
                        f"bad \\x escape in symbol set {original!r}"
                    ) from exc
                i += 4
            elif nxt in _ESCAPES:
                yield _ESCAPES[nxt]
                i += 2
            else:
                yield ord(nxt)
                i += 2
        elif ch == "-":
            yield _RANGE
            i += 1
        else:
            yield ord(ch)
            i += 1


def _runs(mask: int) -> Iterator[tuple[int, int]]:
    """Yield maximal runs (lo, hi) of consecutive set bits."""
    start = None
    prev = None
    for pos in bit_positions(mask):
        if start is None:
            start = prev = pos
        elif pos == prev + 1:
            prev = pos
        else:
            yield start, prev
            start = prev = pos
    if start is not None:
        yield start, prev


_PRINTABLE_EXCLUDED = set("[]^-\\*")


def _render_char(value: int) -> str:
    ch = chr(value)
    if 0x21 <= value <= 0x7E and ch not in _PRINTABLE_EXCLUDED:
        return ch
    return f"\\x{value:02x}"
