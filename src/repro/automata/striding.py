"""Temporal 2-striding: one automaton step per *pair* of input symbols.

Multi-stride processing (Becchi & Crowley) raises throughput by
consuming k symbols per cycle at the cost of a larger alphabet
(``256^k``) and more states.  The paper evaluates 2-stride CAMA against
4-stride Impala (Fig. 13); both start from this transform.

For a homogeneous NFA, every 2-strided state corresponds to a *pair* of
original states matched at the odd/even sub-positions of one stride, so
its 16-bit symbol class is always a single rectangle ``C1 x C2``.  We
represent that exactly with :class:`ProductClass` instead of a 65536-bit
mask.

Construction (language-preserving, proven by the equivalence tests):

* pair state ``(u, v)`` for every transition ``u -> v``: matched when a
  stride's first symbol is in ``C(u)`` and its second in ``C(v)``;
* entry state ``(*, v)`` for every start state ``v``: a match whose
  first matched symbol falls on the *second* half of a stride;
* exit state ``(u, *)`` for every reporting state ``u``: a match whose
  last symbol falls on the *first* half of a stride.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automata.nfa import Automaton, StartKind, STE, edges_digest
from repro.automata.symbols import SymbolClass
from repro.errors import AutomatonError


@dataclass(frozen=True)
class ProductClass:
    """A 16-bit symbol class of the form ``first x second``."""

    first: SymbolClass
    second: SymbolClass

    def __contains__(self, pair: tuple[int, int]) -> bool:
        a, b = pair
        return a in self.first and b in self.second

    def __len__(self) -> int:
        return len(self.first) * len(self.second)

    def __repr__(self) -> str:
        return f"ProductClass({self.first.to_anml()}, {self.second.to_anml()})"


@dataclass
class StridedSTE:
    """A state of a 2-strided automaton."""

    ste_id: int
    product: ProductClass
    start: StartKind = StartKind.NONE
    reporting: bool = False
    #: original reporting state this report corresponds to, if reporting
    report_origin: int | None = None
    #: True when the report fires on the first sub-symbol (odd position)
    reports_on_first_half: bool = False


@dataclass
class StridedAutomaton:
    """A homogeneous NFA over 16-bit (symbol-pair) inputs."""

    name: str
    states: list[StridedSTE] = field(default_factory=list)
    _successors: list[set[int]] = field(default_factory=list)
    #: bumped on every structural mutation; invalidates cached fingerprints
    _mutations: int = field(default=0, repr=False, compare=False)
    _fingerprint: tuple[int, str] | None = field(
        default=None, repr=False, compare=False
    )

    def add_state(
        self,
        product: ProductClass,
        *,
        start: StartKind = StartKind.NONE,
        reporting: bool = False,
        report_origin: int | None = None,
        reports_on_first_half: bool = False,
    ) -> StridedSTE:
        ste = StridedSTE(
            ste_id=len(self.states),
            product=product,
            start=start,
            reporting=reporting,
            report_origin=report_origin,
            reports_on_first_half=reports_on_first_half,
        )
        self.states.append(ste)
        self._successors.append(set())
        self._mutations += 1
        return ste

    def add_transition(self, src: int, dst: int) -> None:
        n = len(self.states)
        if not (0 <= src < n and 0 <= dst < n):
            raise AutomatonError(f"strided transition ({src}, {dst}) out of range")
        self._successors[src].add(dst)
        self._mutations += 1

    def structure_fingerprint(self) -> str:
        """Hex digest of the transition structure (see ``Automaton``'s).

        Keys the shared successor-CSR cache; excludes product classes
        and reporting metadata.  Cached until the next mutation.
        """
        if self._fingerprint is not None and self._fingerprint[0] == self._mutations:
            return self._fingerprint[1]
        digest = edges_digest(len(self.states), self._successors, salt=b"strided")
        self._fingerprint = (self._mutations, digest)
        return digest

    def successors(self, ste_id: int) -> frozenset[int]:
        return frozenset(self._successors[ste_id])

    def transitions(self):
        for u, succ in enumerate(self._successors):
            for v in sorted(succ):
                yield u, v

    def num_transitions(self) -> int:
        return sum(len(s) for s in self._successors)

    def __len__(self) -> int:
        return len(self.states)


def stride2(automaton: Automaton) -> StridedAutomaton:
    """Build the 2-stride automaton. Inputs must be padded to even length
    (use :func:`pad_input`)."""
    universe = SymbolClass.universe()
    out = StridedAutomaton(name=f"{automaton.name}.stride2")

    def start_kind_of(u: STE) -> StartKind:
        return u.start

    # pair states, keyed by (u, v) transition
    pair_id: dict[tuple[int, int], int] = {}
    for u, v in automaton.transitions():
        su, sv = automaton.states[u], automaton.states[v]
        ste = out.add_state(
            ProductClass(su.symbol_class, sv.symbol_class),
            start=start_kind_of(su),
            reporting=sv.reporting,
            report_origin=v if sv.reporting else None,
        )
        pair_id[(u, v)] = ste.ste_id

    # Entry states (*, v): a match whose first symbol is the second half
    # of a stride.  Only all-input starts can fire there; a
    # start-of-data state is enabled solely on the very first symbol,
    # which is always a first half.
    entry_id: dict[int, int] = {}
    for sv in automaton.start_states():
        if sv.start is not StartKind.ALL_INPUT:
            continue
        ste = out.add_state(
            ProductClass(universe, sv.symbol_class),
            start=StartKind.ALL_INPUT,
            reporting=sv.reporting,
            report_origin=sv.ste_id if sv.reporting else None,
        )
        entry_id[sv.ste_id] = ste.ste_id

    # exit states (u, *) for reporting states u (match ends mid-stride)
    exit_id: dict[int, int] = {}
    for su in automaton.reporting_states():
        ste = out.add_state(
            ProductClass(su.symbol_class, universe),
            start=start_kind_of(su),
            reporting=True,
            report_origin=su.ste_id,
            reports_on_first_half=True,
        )
        exit_id[su.ste_id] = ste.ste_id

    # transitions: any strided state whose second half is y feeds every
    # strided state whose first half is a successor u of y.
    ends_at: dict[int, list[int]] = {}
    for (u, v), sid in pair_id.items():
        ends_at.setdefault(v, []).append(sid)
    for v, sid in entry_id.items():
        ends_at.setdefault(v, []).append(sid)

    for y, sources in ends_at.items():
        for u in automaton.successors(y):
            targets: list[int] = []
            for v in automaton.successors(u):
                targets.append(pair_id[(u, v)])
            if u in exit_id:
                targets.append(exit_id[u])
            for src in sources:
                for dst in targets:
                    out.add_transition(src, dst)
    return out


def pad_input(data: bytes, pad_symbol: int = 0) -> bytes:
    """Pad ``data`` to even length so it splits into strides."""
    if len(data) % 2:
        return data + bytes([pad_symbol])
    return data


def stride_pairs(data: bytes) -> list[tuple[int, int]]:
    """Split an even-length byte stream into (first, second) pairs."""
    if len(data) % 2:
        raise AutomatonError("2-stride input must have even length; pad first")
    return [(data[i], data[i + 1]) for i in range(0, len(data), 2)]
