"""Glushkov position construction: regex AST -> homogeneous NFA.

The Glushkov automaton has one state per *position* (occurrence of a
symbol class in the pattern) and no epsilon transitions, which makes it
exactly the homogeneous/ANML NFA the paper maps to hardware: each state
carries the symbol class of its position, initial positions become
start-enabled STEs and final positions report.

For each AST node we compute the classic quadruple
(nullable, first, last, follow) in a single post-order pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.automata.nfa import Automaton, StartKind
from repro.automata.regex import (
    Alt,
    Concat,
    Epsilon,
    Node,
    Optional_,
    Plus,
    Star,
    Symbol,
    parse_regex,
)
from repro.automata.symbols import SymbolClass
from repro.errors import RegexSyntaxError


@dataclass
class _Positions:
    """Glushkov sets for one AST node, over integer position ids."""

    nullable: bool
    first: frozenset[int]
    last: frozenset[int]


@dataclass
class _Builder:
    classes: list[SymbolClass] = field(default_factory=list)
    follow: dict[int, set[int]] = field(default_factory=dict)

    def new_position(self, symbol_class: SymbolClass) -> int:
        pos = len(self.classes)
        self.classes.append(symbol_class)
        self.follow[pos] = set()
        return pos

    def link(self, sources: frozenset[int], targets: frozenset[int]) -> None:
        for src in sources:
            self.follow[src].update(targets)

    def visit(self, node: Node) -> _Positions:
        if isinstance(node, Epsilon):
            return _Positions(True, frozenset(), frozenset())
        if isinstance(node, Symbol):
            pos = self.new_position(node.symbol_class)
            only = frozenset([pos])
            return _Positions(False, only, only)
        if isinstance(node, Concat):
            return self._concat(node)
        if isinstance(node, Alt):
            return self._alt(node)
        if isinstance(node, Star):
            inner = self.visit(node.child)
            self.link(inner.last, inner.first)
            return _Positions(True, inner.first, inner.last)
        if isinstance(node, Plus):
            inner = self.visit(node.child)
            self.link(inner.last, inner.first)
            return _Positions(inner.nullable, inner.first, inner.last)
        if isinstance(node, Optional_):
            inner = self.visit(node.child)
            return _Positions(True, inner.first, inner.last)
        raise TypeError(f"unknown regex AST node: {type(node).__name__}")

    def _concat(self, node: Concat) -> _Positions:
        result = _Positions(True, frozenset(), frozenset())
        for part in node.parts:
            inner = self.visit(part)
            self.link(result.last, inner.first)
            first = (
                result.first | inner.first if result.nullable else result.first
            )
            last = inner.last | result.last if inner.nullable else inner.last
            result = _Positions(result.nullable and inner.nullable, first, last)
        return result

    def _alt(self, node: Alt) -> _Positions:
        nullable = False
        first: frozenset[int] = frozenset()
        last: frozenset[int] = frozenset()
        for option in node.options:
            inner = self.visit(option)
            nullable = nullable or inner.nullable
            first |= inner.first
            last |= inner.last
        return _Positions(nullable, first, last)


def glushkov_nfa(
    node: Node | str,
    *,
    name: str = "regex",
    anchored: bool = False,
    report_code: str | None = None,
) -> Automaton:
    """Build the Glushkov homogeneous NFA for a regex.

    Args:
        node: a parsed AST or a pattern string.
        name: name for the resulting automaton.
        anchored: if False (the default, and the streaming-automata
            convention) a match may start at any input offset, so the
            initial positions are *all-input* start states; if True they
            only fire on the first symbol.
        report_code: attached to the reporting (final-position) states.

    A pattern that accepts the empty string cannot signal a zero-length
    match in the homogeneous model; such matches are dropped, matching
    the behaviour of the AP/VASim toolchains.
    """
    if isinstance(node, str):
        node = parse_regex(node)
    builder = _Builder()
    sets = builder.visit(node)
    if not builder.classes:
        raise RegexSyntaxError(name, 0, "pattern matches only the empty string")
    automaton = Automaton(name=name)
    start = StartKind.START_OF_DATA if anchored else StartKind.ALL_INPUT
    for pos, symbol_class in enumerate(builder.classes):
        automaton.add_state(
            symbol_class,
            start=start if pos in sets.first else StartKind.NONE,
            reporting=pos in sets.last,
            report_code=report_code if pos in sets.last else None,
        )
    for src, targets in builder.follow.items():
        for dst in targets:
            automaton.add_transition(src, dst)
    return automaton


def compile_regex_set(
    patterns: list[str] | dict[str, str],
    *,
    name: str = "regex-set",
    anchored: bool = False,
) -> Automaton:
    """Compile many patterns into one multi-pattern automaton.

    Each pattern becomes its own connected component; its reports carry
    the pattern itself (or the dict key) as the report code, so matches
    can be attributed. This mirrors how rule sets (Snort, ClamAV, ...)
    are loaded onto automata processors.
    """
    if isinstance(patterns, dict):
        items = list(patterns.items())
    else:
        items = [(p, p) for p in patterns]
    if not items:
        raise RegexSyntaxError(name, 0, "empty pattern set")
    combined = Automaton(name=name)
    for code, pattern in items:
        nfa = glushkov_nfa(
            pattern, name=str(code), anchored=anchored, report_code=str(code)
        )
        combined.merge(nfa)
    return combined
