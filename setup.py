"""Package build script (the offline environment lacks the `wheel`
package, so editable installs go through `setup.py develop`).

Also builds the optional native kernel: `cama_kernel.c` compiles into
the extension module `repro.sim.backends._cama_native` whose shared
object carries the C step loop (bound via ctypes, never imported for a
Python surface — see `repro/sim/backends/native.py`).  The extension
is strictly best-effort: on a host without a working C toolchain the
install still succeeds, the `.c` source ships as package data, and the
native backend either compiles it at runtime or degrades to the
pure-numpy bit-parallel kernel.
"""

import sys

from setuptools import Extension, find_packages, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """Swallow extension build failures: the native kernel is an
    accelerator, not a requirement."""

    def run(self):
        try:
            super().run()
        except Exception as exc:
            self._warn(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:
            self._warn(exc)

    @staticmethod
    def _warn(exc):
        print(
            f"warning: skipping the native kernel extension ({exc}); "
            "the pure-python fallback will be used",
            file=sys.stderr,
        )


setup(
    name="repro-cama",
    version="0.8.0",
    description=(
        "Reproduction of CAMA (HPCA 2022) grown into a streaming, "
        "sharded automata-matching service"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro.sim.backends": ["cama_kernel.c"]},
    python_requires=">=3.11",
    install_requires=["numpy"],
    ext_modules=[
        Extension(
            "repro.sim.backends._cama_native",
            sources=["src/repro/sim/backends/cama_kernel.c"],
            define_macros=[("CAMA_BUILD_PYEXT", "1")],
            extra_compile_args=(
                [] if sys.platform == "win32" else ["-O3"]
            ),
            optional=True,
        )
    ],
    cmdclass={"build_ext": OptionalBuildExt},
)
